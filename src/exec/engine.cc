#include "exec/engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <mutex>

#include "exec/trace_replay.h"
#include "passes/shard_creation.h"
#include "rt/intersect.h"
#include "support/check.h"
#include "support/hash.h"
#include "support/metrics.h"
#include "support/topology.h"
#include "support/trace.h"

namespace cr::exec {

namespace {
// Env id of the main/implicit control task (shards use their index).
constexpr uint32_t kMainEnv = UINT32_MAX;
}  // namespace

// =====================================================================
// Impl
// =====================================================================

struct Engine::Impl {
  Impl(rt::Runtime& rt, const ir::Program& program, const ExecConfig& config)
      : isect_cache_(rt.forest()),
        rt_(rt),
        p_(program),
        cost_(config.cost),
        mode_(config.mode),
        workers_(config.workers),
        adaptive_window_(config.adaptive_window),
        elide_boundaries_(config.elide_boundaries),
        pin_workers_(config.pin_workers),
        host_profile_(config.host_profile),
        watchdog_ms_(config.watchdog_ms),
        check_(config.check),
        mutant_(config.check_mutate),
        m_barrier_gens_(rt.metrics().counter("rt.barrier.generations")),
        m_barrier_arrivals_(rt.metrics().counter("rt.barrier.arrivals")),
        m_collective_rounds_(rt.metrics().counter("rt.collective.rounds")) {
    // Install the configured placement policy before anything queries
    // placement (ExecConfig::mapper is the one way to configure it).
    rt_.select_mapper(config.mapper);
    // Trace replay only makes sense where dependence analysis runs at
    // all; everywhere else the flag is an inert no-op (the SPMD legs of
    // the equivalence suites assert exactly that).
    if (config.trace_replay && mode_ == ExecMode::kImplicit &&
        cost_.track_dependences) {
      replay_ = std::make_unique<TraceReplay>(
          rt_.deps(), rt_.forest(), config.replay_invalidate_every);
    }
  }

  ~Impl() {
    // If enable_trace() attached our own tracer to the simulator, detach
    // it before it is destroyed (the runtime outlives the engine).
    if (owned_tracer_ != nullptr &&
        rt_.sim().tracer() == owned_tracer_.get()) {
      rt_.sim().set_tracer(nullptr);
    }
    if (rt_.sim().event_graph() == &graph_) {
      rt_.sim().set_event_graph(nullptr);
    }
  }

  rt::RegionForest& forest() { return rt_.forest(); }
  sim::Simulator& sim() { return rt_.sim(); }
  support::Tracer* tracer() { return rt_.sim().tracer(); }

  // Attribute the span producing `e` to the statement's provenance root
  // (copy/sync rollup by user source statement). Purely observational;
  // no-op without a tracer or when the statement carries no provenance.
  void attribute(const sim::Event& e, const ir::Stmt& s) {
    support::Tracer* t = tracer();
    if (t == nullptr || !s.prov.valid()) return;
    t->attribute(e.uid(), s.prov.source, s.prov.label);
  }

  static sim::Time ns(double v) {
    return v <= 0 ? 0 : static_cast<sim::Time>(v);
  }

  // --- scalar environments (versioned, deferred futures) ---------------

  struct ScalarVersion {
    std::shared_ptr<double> value = std::make_shared<double>(0.0);
    sim::Event ready;  // value valid once triggered
  };
  struct ScalarEnv {
    std::vector<std::vector<ScalarVersion>> versions;  // per scalar id
  };
  std::map<uint32_t, ScalarEnv> envs_;

  ScalarEnv& env(uint32_t id) {
    auto [it, inserted] = envs_.try_emplace(id);
    if (inserted) {
      it->second.versions.resize(p_.scalars.size());
      if (id == kMainEnv) {
        for (size_t s = 0; s < p_.scalars.size(); ++s) {
          ScalarVersion v;
          *v.value = p_.scalars[s].init;
          it->second.versions[s].push_back(std::move(v));
        }
      } else {
        // Shard environments replicate the main task's scalar state as
        // of the shard launch (paper §4.4: scalars are replicated).
        ScalarEnv& m = env(kMainEnv);
        for (size_t s = 0; s < p_.scalars.size(); ++s) {
          it->second.versions[s].push_back(m.versions[s].back());
        }
      }
    }
    return it->second;
  }
  ScalarVersion& latest(uint32_t env_id, ir::ScalarId s) {
    return env(env_id).versions[s].back();
  }

  // --- control contexts -------------------------------------------------

  // One per control thread walking the program: the main task, or one
  // shard. All contexts advance through the statement list in lockstep so
  // globally shared state (instance sync, collectives, barriers) observes
  // operations in logical program order.
  struct Ctx {
    sim::Processor* proc = nullptr;
    uint32_t node = 0;
    uint32_t shard = kMainEnv;  // also the scalar env id
    sim::Event last;            // last issued control segment
    std::vector<sim::Event> outstanding;  // ops issued since last barrier
    std::deque<sim::Event> window;  // in-flight ops (bounded run-ahead)
  };

  // Bounded run-ahead (Legion's finite pipeline): before issuing another
  // operation, a control thread whose window is full stalls until its
  // oldest in-flight operation completes.
  void gate_window(Ctx& ctx, sim::Event completion) {
    if (cost_.run_ahead_window == 0) {
      return;
    }
    if (ctx.window.size() >= cost_.run_ahead_window) {
      ctx.last = sim::Event::merge(sim(), {ctx.last, ctx.window.front()});
      ctx.window.pop_front();
    }
    ctx.window.push_back(completion);
  }

  // Charge control-plane time to the context's processor. `what` labels
  // the interval in traces; control-plane work is categorized as sync
  // (it is the overhead control replication exists to distribute).
  sim::Event charge(Ctx& ctx, double cost_ns, const char* what = "issue",
                    std::function<void()> work = nullptr) {
    support::TraceTag tag;
    if (tracer() != nullptr) {
      tag = {support::TraceCategory::kSync, what};
    }
    ctx.last = ctx.proc->spawn(ctx.last, ns(cost_ns), std::move(work),
                               std::move(tag));
    return ctx.last;
  }

  // --- physical instances and per-instance synchronization -------------

  struct InstanceRef {
    rt::InstanceId inst = rt::kNoId;  // kNoId in virtual-only mode
    uint32_t node = 0;
    rt::RegionId region = rt::kNoId;
    uint32_t key = 0;  // index into sync_
  };
  struct SyncEdge {
    sim::Event event;
    uint32_t node = 0;
    uint32_t shard = kMainEnv;  // issuing control context
    // Barrier-synchronized op (Fig. 4c): its cross-shard dependence
    // edges are relaxed — the barriers around it ARE the ordering.
    bool relaxed = false;
  };
  struct InstanceSync {
    std::vector<SyncEdge> readers;  // since the last write epoch
    std::vector<SyncEdge> writers;  // the current write epoch
  };

  std::map<std::pair<rt::PartitionId, uint64_t>, InstanceRef> part_inst_;
  std::map<rt::RegionId, InstanceRef> root_inst_;
  std::vector<std::unique_ptr<InstanceSync>> sync_;

  // Per-color work weights (subregion sizes) of a partition, cached so
  // weight-aware mappers see a stable vector per partition. Placement
  // queries happen only during the single-threaded unroll.
  std::map<rt::PartitionId, std::vector<uint64_t>> part_weights_;
  const std::vector<uint64_t>* weights_of(rt::PartitionId p) {
    auto [it, inserted] = part_weights_.try_emplace(p);
    if (inserted) {
      const rt::PartitionNode& pn = forest().partition(p);
      it->second.reserve(pn.subregions.size());
      for (rt::RegionId r : pn.subregions) {
        it->second.push_back(forest().region(r).ispace.size());
      }
    }
    return &it->second;
  }

  InstanceRef& part_instance(rt::PartitionId p, uint64_t color) {
    auto [it, inserted] = part_inst_.try_emplace({p, color});
    if (inserted) {
      const rt::PartitionNode& pn = forest().partition(p);
      CR_CHECK(color < pn.subregions.size());
      it->second.region = pn.subregions[color];
      it->second.node = rt_.mapper().node_of_color(
          color, rt::LaunchShape{pn.subregions.size(), weights_of(p)});
      if (rt_.instances() != nullptr) {
        it->second.inst =
            rt_.instances()->create(it->second.region, it->second.node);
      }
      it->second.key = static_cast<uint32_t>(sync_.size());
      sync_.push_back(std::make_unique<InstanceSync>());
    }
    return it->second;
  }

  InstanceRef& root_instance(rt::RegionId root) {
    auto [it, inserted] = root_inst_.try_emplace(root);
    if (inserted) {
      it->second.region = root;
      it->second.node = 0;  // master data lives with the main task
      if (rt_.instances() != nullptr) {
        it->second.inst = rt_.instances()->create(root, 0);
      }
      it->second.key = static_cast<uint32_t>(sync_.size());
      sync_.push_back(std::make_unique<InstanceSync>());
    }
    return it->second;
  }

  InstanceSync& sync_of(const InstanceRef& ref) { return *sync_[ref.key]; }

  // Turn a sync edge into a precondition for an op on `node`, charging a
  // zero-byte notification message when it crosses nodes in SPMD mode
  // (the point-to-point synchronization of paper §3.4).
  sim::Event edge_event(const SyncEdge& e, uint32_t node) {
    if (mode_ == ExecMode::kSpmd && e.node != node) {
      sim::Event sent = rt_.network().send(e.node, node, 0, e.event);
      // Notification raised on behalf of a provenance-carrying consumer
      // (a compiler-inserted copy): its NIC time belongs to that source.
      if (attr_stmt_ != nullptr) attribute(sent, *attr_stmt_);
      return sent;
    }
    return e.event;
  }
  // Barrier-mode relaxation (paper §3.4, Fig. 4c): when either side of
  // a dependence is a barrier-synchronized copy, the point-to-point edge
  // between *different shards* is dropped — sync_insertion guarantees a
  // barrier separates the conflicting pair. Same-shard edges and edges
  // touching the main task always hold (sequential semantics within one
  // control thread). A p2p copy behaves this way only when the checker's
  // fault injection deletes its synchronization.
  static bool skip_edge(const SyncEdge& e, uint32_t shard, bool relaxed) {
    if (!e.relaxed && !relaxed) return false;
    if (shard == kMainEnv || e.shard == kMainEnv) return false;
    return e.shard != shard;
  }
  // --- node-affinity routing (multi-worker backend, SPMD mode) ---------
  // Under the windowed backend an inline Event::merge must complete on
  // one node's worker, and an operation's side effects must run on the
  // node that owns the touched state. Two helpers keep every operation's
  // wiring single-node; both are identity in implicit mode and for
  // same-node issues, so the sequential wiring (and its timeline) is
  // unchanged wherever it was already local.

  // Merge the issuing control thread's preconditions (control chain,
  // captured scalar readys) into the executing node's precondition set.
  // A cross-node dispatch becomes a zero-byte notify: the executing
  // node learns of the issue one network delay later.
  void route_ctx_pre(Ctx& ctx, uint32_t exec_node,
                     const std::vector<sim::Event>& ctx_pre,
                     std::vector<sim::Event>& pre) {
    if (mode_ == ExecMode::kSpmd && exec_node != ctx.node) {
      pre.push_back(rt_.network().send(ctx.node, exec_node, 0,
                                       sim::Event::merge(sim(), ctx_pre)));
      return;
    }
    pre.insert(pre.end(), ctx_pre.begin(), ctx_pre.end());
  }

  // Make a completion triggering on `from` observable on `to`: a
  // cross-node completion returns as a zero-byte notify (the control
  // thread hears about remotely-executed work over the wire).
  sim::Event localize(sim::Event done, uint32_t from, uint32_t to) {
    if (mode_ != ExecMode::kSpmd || from == to) return done;
    return rt_.network().send(from, to, 0, done);
  }

  void read_pre(InstanceSync& s, uint32_t node, uint32_t shard, bool relaxed,
                std::vector<sim::Event>& pre) {
    for (const SyncEdge& w : s.writers) {
      if (skip_edge(w, shard, relaxed)) continue;
      pre.push_back(edge_event(w, node));
    }
  }
  void write_pre(InstanceSync& s, uint32_t node, uint32_t shard, bool relaxed,
                 std::vector<sim::Event>& pre) {
    for (const SyncEdge& w : s.writers) {
      if (skip_edge(w, shard, relaxed)) continue;
      pre.push_back(edge_event(w, node));
    }
    for (const SyncEdge& r : s.readers) {
      if (skip_edge(r, shard, relaxed)) continue;
      pre.push_back(edge_event(r, node));
    }
  }
  static void note_read(InstanceSync& s, sim::Event done, uint32_t node,
                        uint32_t shard, bool relaxed = false) {
    s.readers.push_back({done, node, shard, relaxed});
  }
  static void note_write(InstanceSync& s, sim::Event done, uint32_t node,
                         uint32_t shard, bool relaxed = false) {
    if (!relaxed) {
      // An ordinary write waited on every prior edge, so it dominates
      // them all and becomes the sole write epoch.
      s.writers.assign(1, {done, node, shard, relaxed});
      s.readers.clear();
      return;
    }
    // A relaxed write may retire only its own shard's edges. Cross-shard
    // edges it skipped obviously stay. Main-task edges it DID wait on
    // must stay too: an unordered sibling writer in the same barrier
    // interval (another shard's copy pair of the same statement) still
    // needs to wait on them directly — retiring an edge a sibling never
    // waited on silently breaks transitive ordering (e.g. a main-task
    // init copy vanishing behind an unordered shard copy). Bounded: one
    // relaxed writer per shard plus the surviving main edges.
    auto retired = [&](const SyncEdge& e) { return e.shard == shard; };
    s.writers.erase(
        std::remove_if(s.writers.begin(), s.writers.end(), retired),
        s.writers.end());
    s.readers.erase(
        std::remove_if(s.readers.begin(), s.readers.end(), retired),
        s.readers.end());
    s.writers.push_back({done, node, shard, relaxed});
  }

  // --- intersection tables ----------------------------------------------

  struct PairInfo {
    uint64_t i = 0, j = 0;
    support::IntervalSet points;
  };
  std::map<ir::IntersectId, std::vector<PairInfo>> tables_;
  std::map<ir::IntersectId, uint64_t> table_src_colors_;
  std::map<ir::IntersectId, uint64_t> table_complete_intervals_;
  // Region geometry is immutable once the forest is built, so complete
  // intersections and per-statement pair tables are computed once and
  // reused across loop iterations / shards. Host-side only: the pair
  // list (and its issue charges) is identical with or without the cache.
  rt::IntersectionCache isect_cache_;
  std::map<const ir::Stmt*, std::vector<PairInfo>> copy_pairs_cache_;

  // --- scalar reduction partials ------------------------------------------

  using Captures =
      std::vector<std::pair<ir::ScalarId, std::shared_ptr<double>>>;

  struct PendingReduction {
    std::shared_ptr<std::vector<double>> partials;  // per launch color
    rt::ReduceOp op = rt::ReduceOp::kSum;
    uint64_t colors = 0;
    std::map<uint32_t, std::vector<sim::Event>> events;  // per shard
  };
  std::map<ir::ScalarId, PendingReduction> pending_red_;

  std::map<const ir::Stmt*, std::unique_ptr<rt::DynamicCollective>>
      collectives_;
  std::map<const ir::Stmt*, std::unique_ptr<rt::PhaseBarrier>> barriers_;
  std::map<const ir::Stmt*, uint64_t> stmt_gen_;

  // --- timeline trace ------------------------------------------------------

  // Tracer owned by the engine when enable_trace() is used without an
  // externally attached tracer (benches attach their own via the sim).
  std::unique_ptr<support::Tracer> owned_tracer_;

  // Declare every hardware track up front so idle machine time on
  // never-used cores is visible in the breakdown.
  void declare_tracks() {
    support::Tracer* t = tracer();
    if (t == nullptr) return;
    const sim::Machine& m = rt_.machine();
    for (uint32_t n = 0; n < m.nodes(); ++n) {
      t->set_process_name(n, "node " + std::to_string(n));
      const uint32_t ctl = rt_.mapper().control_proc(n).core;
      for (uint32_t c = 0; c < m.cores_per_node(); ++c) {
        t->declare_track(n, c,
                         c == ctl ? "control" : "core " + std::to_string(c));
      }
      t->declare_track(n, support::kNicTid, "nic");
      t->declare_track(n, support::kMemTid, "mem");
    }
    t->set_process_name(support::kRuntimePid, "runtime");
    t->declare_track(support::kRuntimePid, 0, "barriers", false);
    t->declare_track(support::kRuntimePid, 1, "collectives", false);
  }

  // --- metrics mirror (end of run) -----------------------------------------

  // Mirror every component's counters into the runtime's registry once
  // the timeline is final. Pure host-side observation: counters use
  // set() so re-running on one Runtime stays idempotent, and the
  // per-processor busy histogram is rebuilt from scratch each time.
  void export_metrics(support::MetricsRegistry& m) {
    m.counter("exec.makespan_ns").set(result_.makespan_ns);
    m.counter("exec.point_tasks").set(result_.point_tasks);
    m.counter("exec.copies_issued").set(result_.copies_issued);
    m.counter("exec.copies_skipped").set(result_.copies_skipped);
    m.counter("exec.bytes_moved").set(result_.bytes_moved);
    m.counter("exec.messages").set(result_.messages);
    m.counter("exec.intersection_pairs").set(result_.intersection_pairs);
    m.counter("exec.control_busy_ns").set(result_.control_busy_ns);

    m.counter("sim.events_processed").set(sim().events_processed());
    m.gauge("sim.queue.max_depth").set(sim().max_queue_depth());
    m.counter("sim.windows").set(sim().windows());
    m.counter("sim.windows_elided").set(sim().elided_boundaries());
    m.counter("sim.net.messages").set(rt_.network().messages_sent());
    m.counter("sim.net.bytes").set(rt_.network().bytes_sent());
    support::Histogram& busy = m.histogram("sim.proc.busy_ns");
    busy.reset();
    sim::Machine& mach = rt_.machine();
    for (uint32_t n = 0; n < mach.nodes(); ++n) {
      for (uint32_t c = 0; c < mach.cores_per_node(); ++c) {
        busy.record(mach.proc(n, c).busy_time());
      }
    }

    const rt::DependenceTracker& deps = rt_.deps();
    m.counter("rt.dep.pairs_scanned").set(deps.pairs_scanned());
    m.counter("rt.dep.pairs_tested").set(deps.pairs_tested());
    m.counter("rt.dep.dependences").set(deps.dependences_found());
    m.counter("rt.dep.index_queries").set(deps.index_queries());
    m.counter("rt.dep.index_rebuilds").set(deps.index_rebuilds());

    if (replay_ != nullptr) {
      m.counter("exec.replay.captures").set(replay_->captures());
      m.counter("exec.replay.replays").set(replay_->replays());
      m.counter("exec.replay.invalidations").set(replay_->invalidations());
      m.counter("exec.replay.pairs_skipped").set(replay_->pairs_skipped());
    }

    forest().export_metrics(m);
    m.counter("rt.isect_cache.hits").set(isect_cache_.hits());
    m.counter("rt.isect_cache.misses").set(isect_cache_.misses());
  }

  // --- race-checker instrumentation (ExecConfig::check) --------------------

  // All host-side bookkeeping: when check_ is false nothing below is
  // touched on the hot path, and when true the virtual timeline is
  // unchanged (the log only copies event uids the engine wires anyway).
  check::AccessLog log_;
  sim::EventGraph graph_;
  uint64_t stmt_seq_ = 0;  // statement instances, implicit program order
  uint64_t cur_seq_ = 0;
  const ir::Stmt* cur_stmt_ = nullptr;

  bool mutated(const ir::Stmt& s) const {
    return mutant_ != ir::kNoSyncId && s.sync_id == mutant_;
  }

  // Does this copy run under barrier synchronization (edges relaxed)?
  // P2p copies keep their edges unless fault injection deletes them.
  bool relaxed_copy(const ir::Stmt& s, const Ctx& ctx) const {
    if (mode_ != ExecMode::kSpmd || ctx.shard == kMainEnv) return false;
    if (s.copy_src == rt::kNoId || s.copy_dst == rt::kNoId) return false;
    if (s.sync == ir::SyncMode::kP2P) return mutated(s);
    return true;
  }

  // Physical-location keys: instance accesses use the InstanceSync index
  // (even), scalar-reduction partials buffers their address (odd) — the
  // two families can never collide.
  static uint64_t place_of(const InstanceRef& ref) {
    return uint64_t{ref.key} << 1;
  }
  static uint64_t place_of_partials(const std::vector<double>* p) {
    return reinterpret_cast<uintptr_t>(p) | 1ull;
  }

  rt::RegionId region_root(rt::RegionId r) { return forest().region(r).root; }

  static std::vector<uint64_t> uids_of(const std::vector<sim::Event>& pre) {
    std::vector<uint64_t> out;
    out.reserve(pre.size());
    for (const sim::Event& e : pre) {
      if (e.uid() != 0) out.push_back(e.uid());
    }
    return out;
  }

  void log_access(check::AccessType type, rt::ReduceOp redop, uint64_t place,
                  rt::RegionId root, const std::vector<rt::FieldId>& fields,
                  support::IntervalSet points, std::vector<uint64_t> starts,
                  uint64_t done_uid, uint64_t sub, uint32_t shard,
                  const char* what) {
    check::Access a;
    a.place = place;
    a.root = root;
    a.fields = fields;
    a.points = std::move(points);
    a.type = type;
    a.redop = redop;
    a.start_uids = std::move(starts);
    a.done_uid = done_uid;
    a.seq = cur_seq_;
    a.sub = sub;
    a.shard = shard;
    a.stmt = cur_stmt_;
    a.what = what;
    log_.accesses.push_back(std::move(a));
  }

  // --- misc ---------------------------------------------------------------

  ExecutionResult result_;
  std::map<uint32_t, uint64_t> proc_rr_;  // per-node round-robin counter
  uint64_t op_id_ = 0;

  // Steady-state trace capture & replay (ExecConfig::trace_replay);
  // null unless implicit mode with dependence tracking. All dependence
  // records route through record_dep so the recorder sees the full
  // launch stream.
  std::unique_ptr<TraceReplay> replay_;

  // Fingerprint tags: which kind of requirement a record represents.
  static constexpr uint64_t kFpTask = 1;
  static constexpr uint64_t kFpCopySrc = 2;
  static constexpr uint64_t kFpCopyDst = 3;

  void record_dep(uint64_t tag, uint64_t extra, const rt::Requirement& req,
                  sim::Event completion, std::vector<sim::Event>& pre) {
    if (replay_ != nullptr) {
      replay_->record(requirement_fingerprint(tag, extra, req), op_id_, req,
                      completion, pre);
      return;
    }
    auto deps = rt_.deps().record(op_id_, req, completion);
    pre.insert(pre.end(), deps.begin(), deps.end());
  }

  // Quiescence tracking: every issued operation must complete by the end
  // of the run; a nonzero count at drain means an event cycle (a
  // transformation or executor bug), which must fail loudly. The
  // completion subscriptions fire on whichever simulator worker runs the
  // final cascade, so the bookkeeping is thread-safe (registration is
  // unroll-time single-threaded; only the erase path is concurrent).
  struct LiveOps {
    std::atomic<uint64_t> count{0};
    std::mutex mu;
    std::map<uint64_t, std::string> stuck;  // id -> label
    uint64_t next = 0;
  };
  std::shared_ptr<LiveOps> live_ops_ = std::make_shared<LiveOps>();
  void track(sim::Event completion, std::string label = {}) {
    auto live = live_ops_;
    const uint64_t id = live->next++;
    live->count.fetch_add(1, std::memory_order_relaxed);
    live->stuck.emplace(id, std::move(label));
    completion.subscribe([live, id](sim::Time) {
      live->count.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(live->mu);
      live->stuck.erase(id);
    });
  }

  // =====================================================================
  // Unrolling (lockstep across control contexts)
  // =====================================================================

  void unroll() {
    declare_tracks();
    std::vector<Ctx> main(1);
    main[0].node = 0;
    main[0].shard = kMainEnv;
    main[0].proc = &rt_.machine().proc(rt_.mapper().control_proc(0));
    exec_body(p_.body, main, 1);
  }

  void exec_body(const std::vector<ir::Stmt>& body, std::vector<Ctx>& ctxs,
                 uint32_t num_shards) {
    for (const ir::Stmt& s : body) exec_stmt(s, ctxs, num_shards);
  }

  void exec_stmt(const ir::Stmt& s, std::vector<Ctx>& ctxs,
                 uint32_t num_shards) {
    if (check_) {
      // The unroll walks statements in lockstep across control contexts
      // (the per-context loops live inside the exec_* functions), so one
      // global counter bumped per statement visit *is* the implicit
      // program's sequential order, including loop iterations.
      cur_stmt_ = &s;
      cur_seq_ = ++stmt_seq_;
    }
    switch (s.kind) {
      case ir::StmtKind::kForTime:
        if (replay_ != nullptr) replay_->enter_loop(op_id_);
        for (uint64_t t = 0; t < s.trip_count; ++t) {
          if (replay_ != nullptr) replay_->begin_iteration();
          for (Ctx& c : ctxs) charge(c, cost_.loop_overhead_ns, "loop");
          exec_body(s.body, ctxs, num_shards);
        }
        if (replay_ != nullptr) replay_->exit_loop();
        return;
      case ir::StmtKind::kIndexLaunch:
        exec_launch(s, ctxs, num_shards);
        return;
      case ir::StmtKind::kSingleTask:
        CR_CHECK(ctxs.size() == 1);
        exec_single(s, ctxs[0]);
        return;
      case ir::StmtKind::kScalarOp:
        for (Ctx& c : ctxs) exec_scalar_op(s, c);
        return;
      case ir::StmtKind::kCopy:
        exec_copy(s, ctxs, num_shards);
        return;
      case ir::StmtKind::kFill:
        exec_fill(s, ctxs, num_shards);
        return;
      case ir::StmtKind::kBarrier:
        exec_barrier(s, ctxs, num_shards);
        return;
      case ir::StmtKind::kIntersect:
        CR_CHECK(ctxs.size() == 1);
        exec_intersect(s, ctxs[0]);
        return;
      case ir::StmtKind::kCollective:
        exec_collective(s, ctxs, num_shards);
        return;
      case ir::StmtKind::kShardBody:
        exec_shards(s, ctxs);
        return;
    }
    CR_UNREACHABLE("bad statement kind");
  }

  // --- shards ---------------------------------------------------------------

  void exec_shards(const ir::Stmt& s, std::vector<Ctx>& main) {
    CR_CHECK_MSG(mode_ == ExecMode::kSpmd,
                 "shard body reached in implicit mode");
    CR_CHECK(main.size() == 1);
    const uint32_t num_shards = s.num_shards;
    std::vector<Ctx> shards(num_shards);
    for (uint32_t x = 0; x < num_shards; ++x) {
      shards[x].shard = x;
      shards[x].node = rt_.mapper().shard_node(x, num_shards);
      const sim::ProcId ctl = rt_.mapper().control_proc(shards[x].node);
      shards[x].proc = &rt_.machine().proc(ctl);
      if (support::Tracer* t = tracer()) {
        t->declare_track(ctl.node, ctl.core,
                         "shard " + std::to_string(x) + " (control)");
      }
      // Shards start once the main task has issued them. The launch of a
      // remote shard is a real network dispatch: localize the handoff so
      // the shard's control chain starts on its own node (and worker).
      shards[x].last = localize(main[0].last, main[0].node, shards[x].node);
      // Per-shard cost of the complete intersections for owned pairs
      // (paper §3.3: computed inside the individual shards).
      double complete_ns = 0;
      for (const auto& [id, pairs] : tables_) {
        const uint64_t src_colors = table_src_colors_.at(id);
        for (const PairInfo& pi : pairs) {
          if (owner_shard(pi.i, src_colors, num_shards) == x) {
            complete_ns += cost_.isect_complete_per_interval_ns *
                           static_cast<double>(pi.points.interval_count());
          }
        }
      }
      if (complete_ns > 0) charge(shards[x], complete_ns, "isect:complete");
    }
    exec_body(s.body, shards, num_shards);
    // The main task resumes after the shard launch itself (deferred); the
    // finalization copies it issues synchronize through instance events.
    charge(main[0], cost_.single_task_issue_ns, "resume");
  }

  // Which shard issues the operation for `color`: the blocked launch
  // ownership of paper §3.5 (the same math as passes::shard_block).
  // Deliberately NOT a mapper decision — shards own contiguous color
  // blocks regardless of where the mapper executes the tasks, so a
  // non-default mapper changes placement, never issue ownership.
  static uint32_t owner_shard(uint64_t color, uint64_t colors,
                              uint32_t num_shards) {
    return rt::block_owner(color, colors, num_shards);
  }

  // --- launches --------------------------------------------------------------

  void exec_launch(const ir::Stmt& s, std::vector<Ctx>& ctxs,
                   uint32_t num_shards) {
    const ir::TaskDecl& decl = p_.task(s.task);

    PendingReduction* red = nullptr;
    if (s.scalar_red) {
      PendingReduction& pr = pending_red_[s.scalar_red->target];
      pr.partials = std::make_shared<std::vector<double>>(
          s.launch_colors, rt::reduce_identity(s.scalar_red->op));
      pr.op = s.scalar_red->op;
      pr.colors = s.launch_colors;
      pr.events.clear();
      red = &pr;
    }

    for (Ctx& ctx : ctxs) {
      uint64_t begin = 0, end = s.launch_colors;
      if (ctx.shard != kMainEnv) {
        auto r = passes::shard_block(s.launch_colors, num_shards, ctx.shard);
        begin = r.begin;
        end = r.end;
      }
      for (uint64_t i = begin; i < end; ++i) {
        issue_point_task(s, decl, i, ctx, red);
      }
    }
  }

  // The launch's per-color work weights for weight-aware mappers: the
  // domain argument's subregion size at each color (through its
  // projection). Cached per statement; the default mapper ignores
  // weights, so this changes nothing under the legacy policy.
  std::map<const ir::Stmt*, std::vector<uint64_t>> launch_weights_;
  rt::LaunchShape launch_shape(const ir::Stmt& s, const ir::TaskDecl& decl) {
    rt::LaunchShape shape{s.launch_colors, nullptr};
    if (s.args.empty() || decl.domain_param >= s.args.size()) return shape;
    auto [it, inserted] = launch_weights_.try_emplace(&s);
    if (inserted) {
      const ir::RegionArg& a = s.args[decl.domain_param];
      const rt::PartitionNode& pn = forest().partition(a.partition);
      it->second.reserve(s.launch_colors);
      for (uint64_t c = 0; c < s.launch_colors; ++c) {
        const uint64_t sub = a.proj(c);
        CR_CHECK(sub < pn.subregions.size());
        it->second.push_back(forest().region(pn.subregions[sub]).ispace.size());
      }
    }
    shape.weights = &it->second;
    return shape;
  }

  void issue_point_task(const ir::Stmt& s, const ir::TaskDecl& decl,
                        uint64_t color, Ctx& ctx, PendingReduction* red) {
    ++result_.point_tasks;
    ++op_id_;

    double issue_ns = mode_ == ExecMode::kImplicit ? cost_.implicit_launch_ns
                                                   : cost_.shard_launch_ns;

    std::vector<sim::Event> pre;
    sim::UserEvent done(sim());
    const uint32_t exec_node =
        rt_.mapper().node_of_color(color, launch_shape(s, decl));

    // Phase 1: bind instances and collect every precondition *before*
    // registering this task anywhere — a task passing the same region
    // through several arguments must not depend on itself.
    std::vector<InstanceRef*> insts(s.args.size());
    for (size_t k = 0; k < s.args.size(); ++k) {
      const ir::RegionArg& a = s.args[k];
      insts[k] = &part_instance(a.partition, a.proj(color));
      InstanceSync& sy = sync_of(*insts[k]);
      if (rt::privilege_writes(a.privilege) ||
          a.privilege == rt::Privilege::kReduce) {
        write_pre(sy, exec_node, ctx.shard, false, pre);
      } else {
        read_pre(sy, exec_node, ctx.shard, false, pre);
      }
      // Implicit mode: the master performs dynamic dependence analysis
      // over the logical region tree. The virtual charge is the pairs an
      // exhaustive scan tests (what the simulated master pays); the
      // indexed tracker only changes how fast the host reproduces it.
      if (mode_ == ExecMode::kImplicit && cost_.track_dependences) {
        const uint64_t before = rt_.deps().pairs_scanned();
        rt::Requirement req{insts[k]->region, a.privilege, a.redop, a.fields};
        record_dep(kFpTask,
                   support::pack_pair32(s.task, static_cast<uint32_t>(k)),
                   req, done.event(), pre);
        issue_ns += cost_.dep_pair_ns *
                    static_cast<double>(rt_.deps().pairs_scanned() - before);
      }
    }
    // Phase 2: register as a user — writes first so a read-and-write use
    // of one instance ends in a write epoch that includes this task.
    for (size_t k = 0; k < s.args.size(); ++k) {
      const ir::RegionArg& a = s.args[k];
      if (rt::privilege_writes(a.privilege) ||
          a.privilege == rt::Privilege::kReduce) {
        note_write(sync_of(*insts[k]), done.event(), exec_node, ctx.shard);
      }
    }
    for (size_t k = 0; k < s.args.size(); ++k) {
      const ir::RegionArg& a = s.args[k];
      if (!rt::privilege_writes(a.privilege) &&
          a.privilege != rt::Privilege::kReduce) {
        note_read(sync_of(*insts[k]), done.event(), exec_node, ctx.shard);
      }
    }

    // Scalar argument capture: bind the scalar versions current at issue.
    // The readys and the issue charge trigger on the issuing control
    // thread's node; route them to the executing node as one dispatch.
    std::vector<sim::Event> ctx_pre;
    auto captures = std::make_shared<Captures>();
    for (ir::ScalarId a : s.scalar_args) {
      ScalarVersion& v = latest(ctx.shard, a);
      ctx_pre.push_back(v.ready);
      captures->push_back({a, v.value});
    }

    ctx_pre.push_back(charge(ctx, issue_ns, "issue:task"));
    route_ctx_pre(ctx, exec_node, ctx_pre, pre);

    if (check_) {
      const std::vector<uint64_t> starts = uids_of(pre);
      for (size_t k = 0; k < s.args.size(); ++k) {
        const ir::RegionArg& a = s.args[k];
        const check::AccessType ty =
            a.privilege == rt::Privilege::kReduce ? check::AccessType::kReduce
            : rt::privilege_writes(a.privilege)   ? check::AccessType::kWrite
                                                  : check::AccessType::kRead;
        log_access(ty, a.redop, place_of(*insts[k]),
                   region_root(insts[k]->region), a.fields,
                   forest().region(insts[k]->region).ispace.points(), starts,
                   done.event().uid(), color, ctx.shard, "task");
      }
      if (red != nullptr) {
        // The point task also writes its slot of the scalar-reduction
        // partials buffer, read later by the collective's fold.
        support::IntervalSet slot;
        slot.add_point(color);
        log_access(check::AccessType::kWrite, rt::ReduceOp::kSum,
                   place_of_partials(red->partials.get()), rt::kNoId, {0},
                   std::move(slot), starts, done.event().uid(), color,
                   ctx.shard, "partials");
      }
    }

    double duration =
        decl.cost_base_ns +
        decl.cost_per_elem_ns *
            static_cast<double>(
                forest().region(insts[decl.domain_param]->region)
                    .ispace.size());
    if (cost_.task_slow_prob > 0) {
      uint64_t h = op_id_ * 0x2545f4914f6cdd1dull + 0x9e3779b97f4a7c15ull;
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
      h ^= h >> 31;
      const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
      if (u < cost_.task_slow_prob) duration *= 1.0 + cost_.task_slow_frac;
    }
    if (cost_.task_jitter_pct > 0) {
      // splitmix-style hash of the op id: deterministic noise.
      uint64_t h = op_id_ + 0x9e3779b97f4a7c15ull;
      h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
      h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
      duration *= 1.0 + cost_.task_jitter_pct *
                            static_cast<double>((h ^ (h >> 31)) >> 11) *
                            0x1.0p-53;
    }

    std::function<void()> work;
    if (rt_.instances() != nullptr && decl.kernel) {
      work = make_kernel_work(decl, color, insts, captures, red);
    }
    sim::ProcId proc =
        rt_.mapper().compute_proc(exec_node, proc_rr_[exec_node]++);
    support::TraceTag tag;
    if (tracer() != nullptr) {
      tag = {support::TraceCategory::kCompute,
             decl.name + "[" + std::to_string(color) + "]"};
    }
    sim::Event task_done = rt_.machine().proc(proc).spawn(
        sim::Event::merge(sim(), pre), ns(duration), std::move(work),
        std::move(tag));
    task_done.subscribe([done](sim::Time) mutable { done.trigger(); });
    if (support::Tracer* t = tracer()) {
      // The user-visible `done` fires with the task span as producer.
      t->alias(done.event().uid(), task_done.uid());
    }

    // The control thread observes the completion on its own node; the
    // localized event is what later same-context merges (barrier
    // arrivals, run-ahead gating, reduction folds) consume.
    sim::Event home = localize(done.event(), exec_node, ctx.node);
    ctx.outstanding.push_back(home);
    track(done.event(), "task " + decl.name + "[" + std::to_string(color) + "]");
    gate_window(ctx, home);
    if (red != nullptr) {
      red->events[ctx.shard == kMainEnv ? 0 : ctx.shard].push_back(home);
    }
  }

  std::function<void()> make_kernel_work(
      const ir::TaskDecl& decl, uint64_t color,
      const std::vector<InstanceRef*>& insts,
      std::shared_ptr<Captures> captures, PendingReduction* red);

  // --- single tasks ------------------------------------------------------

  void exec_single(const ir::Stmt& s, Ctx& ctx) {
    const ir::TaskDecl& decl = p_.task(s.task);
    std::vector<sim::Event> pre;
    sim::UserEvent done(sim());
    std::vector<InstanceRef*> insts(s.regions.size());
    for (size_t k = 0; k < s.regions.size(); ++k) {
      CR_CHECK_MSG(forest().region(s.regions[k]).parent == rt::kNoId,
                   "single tasks run on root regions");
      insts[k] = &root_instance(s.regions[k]);
      InstanceSync& sy = sync_of(*insts[k]);
      const ir::TaskParam& param = decl.params[k];
      if (rt::privilege_writes(param.privilege) ||
          param.privilege == rt::Privilege::kReduce) {
        write_pre(sy, 0, ctx.shard, false, pre);
      } else {
        read_pre(sy, 0, ctx.shard, false, pre);
      }
    }
    for (size_t k = 0; k < s.regions.size(); ++k) {
      const ir::TaskParam& param = decl.params[k];
      if (rt::privilege_writes(param.privilege) ||
          param.privilege == rt::Privilege::kReduce) {
        note_write(sync_of(*insts[k]), done.event(), 0, ctx.shard);
      }
    }
    for (size_t k = 0; k < s.regions.size(); ++k) {
      const ir::TaskParam& param = decl.params[k];
      if (!rt::privilege_writes(param.privilege) &&
          param.privilege != rt::Privilege::kReduce) {
        note_read(sync_of(*insts[k]), done.event(), 0, ctx.shard);
      }
    }
    auto captures = std::make_shared<Captures>();
    for (ir::ScalarId a : s.scalar_args) {
      ScalarVersion& v = latest(kMainEnv, a);
      pre.push_back(v.ready);
      captures->push_back({a, v.value});
    }
    pre.push_back(charge(ctx, cost_.single_task_issue_ns, "issue:single"));

    if (check_) {
      const std::vector<uint64_t> starts = uids_of(pre);
      for (size_t k = 0; k < s.regions.size(); ++k) {
        const ir::TaskParam& param = decl.params[k];
        const check::AccessType ty =
            param.privilege == rt::Privilege::kReduce
                ? check::AccessType::kReduce
            : rt::privilege_writes(param.privilege) ? check::AccessType::kWrite
                                                    : check::AccessType::kRead;
        log_access(ty, param.redop, place_of(*insts[k]),
                   region_root(insts[k]->region), param.fields,
                   forest().region(insts[k]->region).ispace.points(), starts,
                   done.event().uid(), 0, ctx.shard, "single-task");
      }
    }

    const double duration =
        decl.cost_base_ns +
        decl.cost_per_elem_ns *
            static_cast<double>(
                forest().region(insts[decl.domain_param]->region)
                    .ispace.size());
    std::function<void()> work;
    if (rt_.instances() != nullptr && decl.kernel) {
      work = make_kernel_work(decl, 0, insts, captures, nullptr);
    }
    sim::ProcId proc = rt_.mapper().compute_proc(0, proc_rr_[0]++);
    support::TraceTag tag;
    if (tracer() != nullptr) {
      tag = {support::TraceCategory::kCompute, decl.name};
    }
    sim::Event task_done = rt_.machine().proc(proc).spawn(
        sim::Event::merge(sim(), pre), ns(duration), std::move(work),
        std::move(tag));
    task_done.subscribe([done](sim::Time) mutable { done.trigger(); });
    if (support::Tracer* t = tracer()) {
      t->alias(done.event().uid(), task_done.uid());
    }
    ctx.outstanding.push_back(done.event());
    track(done.event(), "single " + decl.name);
  }

  // --- scalar ops -----------------------------------------------------------

  void exec_scalar_op(const ir::Stmt& s, Ctx& ctx) {
    // Deferred scalar dataflow (futures): the new versions become ready
    // once the read versions are; the control chain does not block.
    std::vector<sim::Event> ready;
    auto inputs = std::make_shared<Captures>();
    for (ir::ScalarId r : s.scalar_reads) {
      ScalarVersion& v = latest(ctx.shard, r);
      ready.push_back(v.ready);
      inputs->push_back({r, v.value});
    }
    charge(ctx, cost_.scalar_op_ns, "scalar");

    sim::UserEvent computed(sim());
    std::vector<std::shared_ptr<double>> outs;
    for (ir::ScalarId w : s.scalar_writes) {
      ScalarVersion v;
      v.ready = computed.event();
      outs.push_back(v.value);
      env(ctx.shard).versions[w].push_back(std::move(v));
    }
    auto fn = s.scalar_fn;
    const size_t nscalars = p_.scalars.size();
    auto writes = s.scalar_writes;
    sim::Event all = sim::Event::merge(sim(), ready);
    all.subscribe([fn, inputs, outs, writes, nscalars,
                   computed](sim::Time) mutable {
      std::vector<double> env_in(nscalars, 0.0);
      for (auto& [id, val] : *inputs) env_in[id] = *val;
      std::vector<double> env_out = env_in;
      fn(env_in, env_out);
      for (size_t k = 0; k < writes.size(); ++k) {
        *outs[k] = env_out[writes[k]];
      }
      computed.trigger();
    });
  }

  // --- copies -----------------------------------------------------------------

  const std::vector<PairInfo>& copy_pairs(const ir::Stmt& s) {
    if (s.isect != ir::kNoIntersect) return tables_.at(s.isect);
    auto [it, inserted] = copy_pairs_cache_.try_emplace(&s);
    if (!inserted) return it->second;
    std::vector<PairInfo>& pairs = it->second;
    if (s.src_root != rt::kNoId) {
      const rt::PartitionNode& pn = forest().partition(s.copy_dst);
      for (uint64_t j = 0; j < pn.subregions.size(); ++j) {
        pairs.push_back(
            {0, j, forest().region(pn.subregions[j]).ispace.points()});
      }
      return pairs;
    }
    if (s.dst_root != rt::kNoId) {
      const rt::PartitionNode& pn = forest().partition(s.copy_src);
      for (uint64_t i = 0; i < pn.subregions.size(); ++i) {
        pairs.push_back(
            {i, 0, forest().region(pn.subregions[i]).ispace.points()});
      }
      return pairs;
    }
    // All-pairs form (paper §3.3's O(N^2) baseline; empty pairs still
    // cost issue overhead, so every (i, j) keeps its PairInfo). The
    // shallow prefilter only tells us which pairs need the exact
    // interval merge; the rest get empty point sets without paying
    // O(|src| * |dst|) complete intersections on the host.
    const rt::PartitionNode& ps = forest().partition(s.copy_src);
    const rt::PartitionNode& pd = forest().partition(s.copy_dst);
    const auto shallow =
        rt::shallow_intersections(forest(), s.copy_src, s.copy_dst);
    size_t next = 0;  // shallow pairs arrive sorted by (src, dst) color
    pairs.reserve(ps.subregions.size() * pd.subregions.size());
    for (uint64_t i = 0; i < ps.subregions.size(); ++i) {
      for (uint64_t j = 0; j < pd.subregions.size(); ++j) {
        PairInfo pi{i, j, {}};
        if (next < shallow.size() && shallow[next].src_color == i &&
            shallow[next].dst_color == j) {
          pi.points =
              isect_cache_.complete(ps.subregions[i], pd.subregions[j]);
          ++next;
        }
        pairs.push_back(std::move(pi));
      }
    }
    return pairs;
  }

  void exec_copy(const ir::Stmt& s, std::vector<Ctx>& ctxs,
                 uint32_t num_shards) {
    const std::vector<PairInfo>& pairs = copy_pairs(s);
    const uint64_t src_colors =
        s.copy_src == rt::kNoId
            ? 1
            : forest().partition(s.copy_src).subregions.size();
    for (Ctx& ctx : ctxs) {
      for (const PairInfo& pi : pairs) {
        // Sharded execution: the producer shard issues the copy
        // (sequential semantics on the producer side, paper §3.4).
        if (ctx.shard != kMainEnv && s.copy_src != rt::kNoId &&
            owner_shard(pi.i, src_colors, num_shards) != ctx.shard) {
          continue;
        }
        issue_one_copy(s, pi, ctx);
      }
    }
  }

  void issue_one_copy(const ir::Stmt& s, const PairInfo& pi, Ctx& ctx) {
    rt::CopyRequest req;
    req.fields = s.copy_fields;
    req.reduction = s.copy_reduction;
    req.redop = s.copy_redop;
    req.points = pi.points;

    InstanceRef* src;
    InstanceRef* dst;
    if (s.src_root != rt::kNoId) {
      src = &root_instance(s.src_root);
    } else {
      src = &part_instance(s.copy_src, pi.i);
    }
    if (s.dst_root != rt::kNoId) {
      dst = &root_instance(s.dst_root);
    } else {
      dst = &part_instance(s.copy_dst, pi.j);
    }
    req.src_region = src->region;
    req.src_node = src->node;
    req.src_inst = src->inst;
    req.dst_region = dst->region;
    req.dst_node = dst->node;
    req.dst_inst = dst->inst;

    if (req.points.empty()) {
      // Issue overhead is still paid — this is what §3.3 optimizes away.
      attribute(charge(ctx, cost_.copy_issue_ns, "issue:copy"), s);
      ++result_.copies_skipped;
      return;
    }

    std::vector<sim::Event> pre;
    InstanceSync& ssy = sync_of(*src);
    InstanceSync& dsy = sync_of(*dst);
    const bool relaxed = relaxed_copy(s, ctx);
    attr_stmt_ = &s;  // notify sends raised below belong to this copy
    read_pre(ssy, req.src_node, ctx.shard, relaxed, pre);
    // Destination side: WAR against current readers, WAW against the
    // current write epoch. Reduction copies serialize the same way, which
    // fixes their fold order deterministically (issue order). The edges
    // are routed to the *source* node: the transfer is initiated there
    // (the source gathers and injects the payload), so in SPMD mode the
    // destination's readiness travels to the source as a notify first.
    write_pre(dsy, req.src_node, ctx.shard, relaxed, pre);
    attr_stmt_ = nullptr;
    double issue_ns = cost_.copy_issue_ns;
    if (mode_ == ExecMode::kImplicit && cost_.track_dependences) {
      // The master's dynamic analysis also covers runtime copies. The
      // logical requirement is the subregion whose points the pair copy
      // actually moves — a copy through a root instance reads/writes
      // only the opposite side's subregion points, and registering the
      // whole root would leave a user that aliases every later tile
      // operation (physical hazards on the root instance are already
      // ordered by InstanceSync above).
      const rt::RegionId src_logical =
          s.src_root != rt::kNoId
              ? forest().partition(s.copy_dst).subregions[pi.j]
              : forest().partition(s.copy_src).subregions[pi.i];
      const rt::RegionId dst_logical =
          s.dst_root != rt::kNoId
              ? forest().partition(s.copy_src).subregions[pi.i]
              : forest().partition(s.copy_dst).subregions[pi.j];
      sim::UserEvent completion(sim());
      const uint64_t before = rt_.deps().pairs_scanned();
      ++op_id_;
      const uint64_t pair_key = support::pack_pair32(
          static_cast<uint32_t>(pi.i), static_cast<uint32_t>(pi.j));
      rt::Requirement rr{src_logical, rt::Privilege::kReadOnly,
                         rt::ReduceOp::kSum, req.fields};
      record_dep(kFpCopySrc, pair_key, rr, completion.event(), pre);
      rt::Requirement wr{dst_logical, rt::Privilege::kReadWrite,
                         rt::ReduceOp::kSum, req.fields};
      record_dep(kFpCopyDst, pair_key, wr, completion.event(), pre);
      issue_ns += cost_.dep_pair_ns *
                  static_cast<double>(rt_.deps().pairs_scanned() - before);
      sim::Event issued = charge(ctx, issue_ns, "issue:copy");
      attribute(issued, s);
      pre.push_back(issued);
      sim::Event delivered =
          rt_.copies().issue(req, sim::Event::merge(sim(), pre));
      attribute(delivered, s);
      delivered.subscribe(
          [completion](sim::Time) mutable { completion.trigger(); });
      note_read(ssy, delivered, req.src_node, ctx.shard, relaxed);
      note_write(dsy, delivered, req.dst_node, ctx.shard, relaxed);
      log_copy_access(s, pi, *src, *dst, pre, delivered, ctx);
      ctx.outstanding.push_back(delivered);
      return;
    }

    sim::Event issued = charge(ctx, issue_ns, "issue:copy");
    attribute(issued, s);
    route_ctx_pre(ctx, req.src_node, {issued}, pre);
    sim::Event delivered =
        rt_.copies().issue(req, sim::Event::merge(sim(), pre));
    attribute(delivered, s);
    // Delivery triggers on the destination; the source's WAR edge (a
    // later writer of the source instance) observes it via a notify.
    note_read(ssy, localize(delivered, req.dst_node, req.src_node),
              req.src_node, ctx.shard, relaxed);
    note_write(dsy, delivered, req.dst_node, ctx.shard, relaxed);
    log_copy_access(s, pi, *src, *dst, pre, delivered, ctx);
    ctx.outstanding.push_back(localize(delivered, req.dst_node, ctx.node));
  }

  void log_copy_access(const ir::Stmt& s, const PairInfo& pi,
                       const InstanceRef& src, const InstanceRef& dst,
                       const std::vector<sim::Event>& pre,
                       sim::Event delivered, const Ctx& ctx) {
    if (!check_) return;
    const std::vector<uint64_t> starts = uids_of(pre);
    const uint64_t sub = (pi.i << 32) | pi.j;  // unique per (src, dst) pair
    log_access(check::AccessType::kRead, rt::ReduceOp::kSum, place_of(src),
               region_root(src.region), s.copy_fields, pi.points, starts,
               delivered.uid(), sub, ctx.shard, "copy-src");
    log_access(s.copy_reduction ? check::AccessType::kReduce
                                : check::AccessType::kWrite,
               s.copy_redop, place_of(dst), region_root(dst.region),
               s.copy_fields, pi.points, starts, delivered.uid(), sub,
               ctx.shard, "copy-dst");
  }

  // --- fills -------------------------------------------------------------------

  void exec_fill(const ir::Stmt& s, std::vector<Ctx>& ctxs,
                 uint32_t num_shards) {
    const rt::PartitionNode& pn = forest().partition(s.fill_dst);
    const uint64_t colors = pn.subregions.size();
    for (Ctx& ctx : ctxs) {
      uint64_t begin = 0, end = colors;
      if (ctx.shard != kMainEnv) {
        auto r = passes::shard_block(colors, num_shards, ctx.shard);
        begin = r.begin;
        end = r.end;
      }
      for (uint64_t c = begin; c < end; ++c) {
        InstanceRef& ref = part_instance(s.fill_dst, c);
        InstanceSync& sy = sync_of(ref);
        std::vector<sim::Event> pre;
        write_pre(sy, ref.node, ctx.shard, false, pre);
        route_ctx_pre(ctx, ref.node,
                      {charge(ctx, cost_.fill_issue_ns, "issue:fill")}, pre);
        std::function<void()> work;
        if (rt_.instances() != nullptr) {
          auto* mgr = rt_.instances();
          const rt::InstanceId inst = ref.inst;
          auto fields = s.fill_fields;
          const double value = s.fill_value;
          work = [mgr, inst, fields, value] {
            for (rt::FieldId f : fields) mgr->get(inst).fill_f64(f, value);
          };
        }
        sim::ProcId proc =
            rt_.mapper().compute_proc(ref.node, proc_rr_[ref.node]++);
        support::TraceTag tag;
        if (tracer() != nullptr) {
          tag = {support::TraceCategory::kCompute, "fill"};
        }
        sim::Event done = rt_.machine().proc(proc).spawn(
            sim::Event::merge(sim(), pre), ns(500), std::move(work),
            std::move(tag));
        note_write(sy, done, ref.node, ctx.shard);
        if (check_) {
          log_access(check::AccessType::kWrite, rt::ReduceOp::kSum,
                     place_of(ref), region_root(ref.region), s.fill_fields,
                     forest().region(ref.region).ispace.points(),
                     uids_of(pre), done.uid(), c, ctx.shard, "fill");
        }
        ctx.outstanding.push_back(localize(done, ref.node, ctx.node));
        track(done, "fill " + std::to_string(s.fill_dst) + "[" +
                        std::to_string(c) + "]");
      }
    }
  }

  // --- barriers ------------------------------------------------------------------

  void exec_barrier(const ir::Stmt& s, std::vector<Ctx>& ctxs,
                    uint32_t num_shards) {
    if (mutated(s)) {
      // Fault injection: the barrier is deleted outright — no arrivals,
      // no waits. The outstanding sets keep accumulating, so a later
      // (unmutated) barrier still collects them and the run quiesces.
      return;
    }
    auto [it, inserted] = barriers_.try_emplace(&s);
    if (inserted) {
      it->second = std::make_unique<rt::PhaseBarrier>(sim(), rt_.network(),
                                                      num_shards);
    }
    const uint64_t gen = stmt_gen_[&s]++;
    m_barrier_gens_.add(1);
    m_barrier_arrivals_.add(ctxs.size());
    // The generation's release span (runtime track) is sync time induced
    // by the statement sync_insertion anchored this barrier to.
    attribute(it->second->wait(gen), s);
    for (Ctx& ctx : ctxs) {
      // Arrive once everything this shard issued so far has completed;
      // the control chain resumes after the barrier releases.
      std::vector<sim::Event> outstanding = std::move(ctx.outstanding);
      ctx.outstanding.clear();
      outstanding.push_back(ctx.last);
      it->second->arrive(gen, sim::Event::merge(sim(), outstanding));
      ctx.last = sim::Event::merge(sim(), {ctx.last, it->second->wait(gen)});
    }
  }

  // --- intersections ----------------------------------------------------------------

  void exec_intersect(const ir::Stmt& s, Ctx& ctx) {
    const rt::PartitionNode& ps = forest().partition(s.isect_src);
    const rt::PartitionNode& pd = forest().partition(s.isect_dst);
    uint64_t intervals = 0;
    for (rt::RegionId r : ps.subregions) {
      intervals += forest().region(r).ispace.points().interval_count();
    }
    for (rt::RegionId r : pd.subregions) {
      intervals += forest().region(r).ispace.points().interval_count();
    }
    auto pairs =
        rt::shallow_intersections(forest(), s.isect_src, s.isect_dst);
    std::vector<PairInfo> infos;
    uint64_t complete_intervals = 0;
    for (const auto& pr : pairs) {
      PairInfo pi;
      pi.i = pr.src_color;
      pi.j = pr.dst_color;
      pi.points = isect_cache_.complete(ps.subregions[pr.src_color],
                                        pd.subregions[pr.dst_color]);
      complete_intervals += pi.points.interval_count();
      if (!pi.points.empty()) infos.push_back(std::move(pi));
    }
    result_.intersection_pairs += infos.size();
    tables_[s.isect_id] = std::move(infos);
    table_src_colors_[s.isect_id] = ps.subregions.size();
    table_complete_intervals_[s.isect_id] = complete_intervals;

    // The shallow pass runs on the issuing node (paper: a single node);
    // the complete sets are charged per shard at shard start for SPMD,
    // or here for implicit mode.
    charge(ctx,
           cost_.isect_shallow_per_interval_ns * static_cast<double>(intervals),
           "isect:shallow");
    if (mode_ == ExecMode::kImplicit) {
      charge(ctx,
             cost_.isect_complete_per_interval_ns *
                 static_cast<double>(complete_intervals),
             "isect:complete");
    }
  }

  // --- collectives ------------------------------------------------------------------

  void exec_collective(const ir::Stmt& s, std::vector<Ctx>& ctxs,
                       uint32_t num_shards) {
    auto it = pending_red_.find(s.coll_scalar);
    CR_CHECK_MSG(it != pending_red_.end(),
                 "collective without a preceding scalar-reduction launch");
    PendingReduction& pr = it->second;

    if (ctxs.size() == 1 && ctxs[0].shard == kMainEnv) {
      // Implicit / main-task fold: new version ready when all point tasks
      // have contributed; folded in color order (deterministic).
      Ctx& ctx = ctxs[0];
      charge(ctx, cost_.collective_issue_ns, "issue:collective");
      std::vector<sim::Event> evs;
      for (auto& [sh, list] : pr.events) {
        evs.insert(evs.end(), list.begin(), list.end());
      }
      ScalarVersion v;
      sim::UserEvent readyev(sim());
      v.ready = readyev.event();
      auto value = v.value;
      auto partials = pr.partials;
      const rt::ReduceOp op = pr.op;
      env(kMainEnv).versions[s.coll_scalar].push_back(std::move(v));
      sim::Event all = sim::Event::merge(sim(), evs);
      if (check_) {
        // The fold reads every partials slot once all contributors done.
        std::vector<uint64_t> starts;
        if (all.uid() != 0) starts.push_back(all.uid());
        log_access(check::AccessType::kRead, pr.op,
                   place_of_partials(pr.partials.get()), rt::kNoId, {0},
                   support::IntervalSet::range(0, pr.colors),
                   std::move(starts), all.uid(), 0, kMainEnv, "scalar-fold");
      }
      all.subscribe([value, partials, op, readyev](sim::Time) mutable {
        double acc = rt::reduce_identity(op);
        for (double d : *partials) acc = rt::reduce_fold(op, acc, d);
        *value = acc;
        readyev.trigger();
      });
      return;
    }

    // SPMD: dynamic collective over the shards (paper §4.4).
    auto [cit, inserted] = collectives_.try_emplace(&s);
    if (inserted) {
      cit->second = std::make_unique<rt::DynamicCollective>(
          sim(), rt_.network(), num_shards, pr.op);
    }
    rt::DynamicCollective* dc = cit->second.get();
    const uint64_t gen = stmt_gen_[&s]++;
    m_collective_rounds_.add(1);
    attribute(dc->result_event(gen), s);
    for (Ctx& ctx : ctxs) {
      charge(ctx, cost_.collective_issue_ns, "issue:collective");
      auto partials = pr.partials;
      const rt::ReduceOp op = pr.op;
      auto block = passes::shard_block(pr.colors, num_shards, ctx.shard);
      // Fault injection: contribute without waiting for the shard's point
      // tasks — the gather no longer anchors the fold after the writers.
      sim::Event local = mutated(s)
                             ? sim::Event()
                             : sim::Event::merge(sim(), pr.events[ctx.shard]);
      dc->contribute(gen, ctx.shard, local, [partials, op, block] {
        double acc = rt::reduce_identity(op);
        for (uint64_t c = block.begin; c < block.end; ++c) {
          acc = rt::reduce_fold(op, acc, (*partials)[c]);
        }
        return acc;
      });
      ScalarVersion v;
      sim::UserEvent readyev(sim());
      v.ready = readyev.event();
      auto value = v.value;
      env(ctx.shard).versions[s.coll_scalar].push_back(std::move(v));
      dc->result_event(gen).subscribe(
          [value, dc, gen, readyev](sim::Time) mutable {
            *value = dc->result(gen);
            readyev.trigger();
          });
    }
    if (check_) {
      // Each contribution folds its shard's partials block. The gather
      // event (the collective's merge of every arrival) is the anchor:
      // it happens-after each shard's local precondition, and blocks are
      // disjoint, so anchoring at the gather adds no false order. Under
      // fault injection every arrival pre-triggers, the merge collapses
      // to uid 0, and the fold reads become unanchored — a race against
      // the point tasks' partials writes.
      const uint64_t gather = dc->gather_uid(gen);
      std::vector<uint64_t> starts;
      if (gather != 0) starts.push_back(gather);
      for (Ctx& ctx : ctxs) {
        auto block = passes::shard_block(pr.colors, num_shards, ctx.shard);
        log_access(check::AccessType::kRead, pr.op,
                   place_of_partials(pr.partials.get()), rt::kNoId, {0},
                   support::IntervalSet::range(block.begin, block.end),
                   starts, gather, ctx.shard, ctx.shard, "partials-fold");
      }
    }
  }

  // ---------------------------------------------------------------------

  rt::Runtime& rt_;
  const ir::Program& p_;
  CostModel cost_;
  ExecMode mode_;
  const uint32_t workers_;      // 0 = sequential loop, N = windowed backend
  const bool adaptive_window_;  // per-lane horizons vs global reference
  const bool elide_boundaries_;  // fuse serial-free window boundaries
  const bool pin_workers_;      // topology-pin the backend's host threads
  const bool host_profile_;     // host-phase spans on the windowed run
  const uint64_t watchdog_ms_;  // stall watchdog budget (0 = off)
  const bool check_;            // record accesses + HB graph, run checker
  const ir::SyncId mutant_;     // sync op deleted by fault injection
  // Cached registry counters bumped during unroll (avoids the by-name
  // lookup on every barrier/collective generation).
  support::Counter& m_barrier_gens_;
  support::Counter& m_barrier_arrivals_;
  support::Counter& m_collective_rounds_;
  // Statement whose preconditions are being gathered right now; lets
  // edge_event attribute the notify messages it raises (see above).
  const ir::Stmt* attr_stmt_ = nullptr;
};

// ---------------------------------------------------------------------
// Kernel context bound to partition instances.
// ---------------------------------------------------------------------

namespace {

class EngineContext final : public ir::TaskContext {
 public:
  EngineContext(rt::InstanceManager& mgr, const ir::TaskDecl& decl)
      : mgr_(mgr), decl_(decl) {}

  std::vector<rt::InstanceId> insts;
  std::vector<const rt::IndexSpace*> domains;
  const rt::IndexSpace* launch_domain = nullptr;
  const std::vector<std::pair<ir::ScalarId, std::shared_ptr<double>>>*
      captures = nullptr;
  double* red_slot = nullptr;
  rt::ReduceOp red_op = rt::ReduceOp::kSum;

  const rt::IndexSpace& domain() const override { return *launch_domain; }
  const rt::IndexSpace& param_domain(size_t k) const override {
    return *domains[k];
  }
  double read_f64(size_t k, rt::FieldId f, uint64_t pt) const override {
    CR_DCHECK(rt::privilege_reads(decl_.params[k].privilege));
    return mgr_.get(insts[k]).read_f64(f, pt);
  }
  void write_f64(size_t k, rt::FieldId f, uint64_t pt, double v) override {
    CR_DCHECK(rt::privilege_writes(decl_.params[k].privilege));
    mgr_.get(insts[k]).write_f64(f, pt, v);
  }
  int64_t read_i64(size_t k, rt::FieldId f, uint64_t pt) const override {
    CR_DCHECK(rt::privilege_reads(decl_.params[k].privilege));
    return mgr_.get(insts[k]).read_i64(f, pt);
  }
  void write_i64(size_t k, rt::FieldId f, uint64_t pt, int64_t v) override {
    CR_DCHECK(rt::privilege_writes(decl_.params[k].privilege));
    mgr_.get(insts[k]).write_i64(f, pt, v);
  }
  void reduce_f64(size_t k, rt::FieldId f, uint64_t pt, double v) override {
    CR_DCHECK(decl_.params[k].privilege == rt::Privilege::kReduce);
    mgr_.get(insts[k]).reduce_f64(f, pt, decl_.params[k].redop, v);
  }
  double scalar(ir::ScalarId s) const override {
    if (captures != nullptr) {
      for (const auto& [id, val] : *captures) {
        if (id == s) return *val;
      }
    }
    CR_CHECK_MSG(false, "scalar not captured by this task");
  }
  void reduce_scalar(double v) override {
    CR_CHECK_MSG(red_slot != nullptr, "no scalar reduction on this launch");
    *red_slot = rt::reduce_fold(red_op, *red_slot, v);
  }

 private:
  rt::InstanceManager& mgr_;
  const ir::TaskDecl& decl_;
};

}  // namespace

std::function<void()> Engine::Impl::make_kernel_work(
    const ir::TaskDecl& decl, uint64_t color,
    const std::vector<InstanceRef*>& insts, std::shared_ptr<Captures> captures,
    PendingReduction* red) {
  auto ids = std::make_shared<std::vector<rt::InstanceId>>();
  auto doms = std::make_shared<std::vector<const rt::IndexSpace*>>();
  for (const InstanceRef* r : insts) {
    ids->push_back(r->inst);
    doms->push_back(&forest().region(r->region).ispace);
  }
  auto* mgr = rt_.instances();
  const ir::TaskDecl* decl_ptr = &decl;
  std::shared_ptr<std::vector<double>> partials =
      red != nullptr ? red->partials : nullptr;
  const rt::ReduceOp op = red != nullptr ? red->op : rt::ReduceOp::kSum;
  const size_t domain_param = decl.domain_param;
  return [mgr, decl_ptr, ids, doms, captures, partials, op, color,
          domain_param] {
    EngineContext ctx(*mgr, *decl_ptr);
    ctx.insts = *ids;
    ctx.domains = *doms;
    ctx.launch_domain = (*doms)[domain_param];
    ctx.captures = captures.get();
    double slot = rt::reduce_identity(op);
    if (partials) {
      ctx.red_slot = &slot;
      ctx.red_op = op;
    }
    decl_ptr->kernel(ctx);
    if (partials) (*partials)[color] = slot;
  };
}

// =====================================================================
// Engine
// =====================================================================

Engine::Engine(rt::Runtime& rt, const ir::Program& program,
               const ExecConfig& config)
    : impl_(std::make_unique<Impl>(rt, program, config)) {
  if (config.trace) enable_trace();
}

Engine::Engine(rt::Runtime& rt, const ir::Program& program,
               const CostModel& cost, ExecMode mode)
    : Engine(rt, program, [&] {
        ExecConfig config;
        config.cost = cost;
        config.mode = mode;
        return config;
      }()) {}

Engine::~Engine() = default;

ExecutionResult Engine::run() {
  // The dependence tracker lives on the Runtime and so outlives any one
  // engine, but op ids are per-engine (restarting at 0): without a reset
  // a second run on the same runtime would match its fresh op ids
  // against the first run's stale users and carry over that run's
  // counters. Each run's analysis — and its metrics — starts clean.
  impl_->rt_.deps().reset();
  // The simulator clock is likewise monotone across the runtime's
  // lifetime; the makespan is this run's elapsed virtual time, not the
  // absolute end time (they differ only when an engine reuses a
  // runtime that already simulated something).
  const sim::Time run_start = impl_->sim().now();
  // Copy/network totals also live on the runtime and accumulate across
  // engines; the result reports this run's deltas.
  const uint64_t copies0 = impl_->rt_.copies().copies_issued();
  const uint64_t skipped0 = impl_->rt_.copies().copies_skipped_empty();
  const uint64_t bytes0 = impl_->rt_.copies().bytes_moved();
  const uint64_t messages0 = impl_->rt_.network().messages_sent();
  if (impl_->check_) {
    // Record the happens-before DAG for the whole run: merge edges at
    // unroll, trigger/dispatch causality during simulation.
    impl_->graph_.clear();
    impl_->sim().set_event_graph(&impl_->graph_);
  }
  const uint32_t workers = impl_->workers_;
  // Host-phase profiler: lives for the duration of this run only; the
  // simulator records spans into it and the aggregate lands on the
  // result. Wall-clock observation only — attach/detach cannot affect
  // virtual time (equivalence-tested).
  support::HostProfiler host_prof;
  bool profiling = false;
  if (workers > 0) {
    CR_CHECK_MSG(impl_->mode_ == ExecMode::kSpmd,
                 "the multi-worker backend requires SPMD mode");
    sim::Simulator& s = impl_->sim();
    // The partitioned queues must exist before the unroll schedules
    // anything; the lookahead is the network's minimum cross-node
    // influence delay (wire latency + handler cost).
    if (!s.windowed()) {
      s.begin_windowed(impl_->rt_.machine().nodes(),
                       impl_->rt_.network().min_cross_node_delay());
    }
    s.set_adaptive_window(impl_->adaptive_window_);
    s.set_elide_boundaries(impl_->elide_boundaries_);
    if (impl_->pin_workers_) {
      // Host-side placement only (virtual time is unaffected): spread
      // the backend's threads across distinct physical cores.
      s.set_worker_cpus(support::CpuTopology::probe().plan(workers));
    }
    if (impl_->host_profile_) {
      s.set_host_profiler(&host_prof);
      profiling = true;
    }
    if (impl_->watchdog_ms_ > 0) {
      sim::Simulator::WatchdogOptions wd;
      wd.budget_ms = impl_->watchdog_ms_;
      s.set_watchdog(std::move(wd));
    }
  }
  impl_->unroll();
  impl_->result_.makespan_ns =
      (workers > 0 ? impl_->sim().run_windowed(workers)
                   : impl_->sim().run()) -
      run_start;
  if (workers > 0) {
    sim::Simulator& s = impl_->sim();
    if (profiling) {
      s.set_host_profiler(nullptr);
      impl_->result_.host_profile =
          std::make_shared<support::HostProfile>(host_prof.profile());
    }
    if (impl_->watchdog_ms_ > 0) s.set_watchdog({});
  }
  if (impl_->live_ops_->count != 0) {
    std::string msg = "execution did not quiesce; stuck ops:";
    int shown = 0;
    for (const auto& [id, label] : impl_->live_ops_->stuck) {
      msg += "\n  " + label;
      if (++shown >= 20) break;
    }
    CR_CHECK_MSG(false, msg.c_str());
  }
  impl_->result_.copies_issued =
      impl_->rt_.copies().copies_issued() - copies0;
  impl_->result_.copies_skipped +=
      impl_->rt_.copies().copies_skipped_empty() - skipped0;
  impl_->result_.bytes_moved = impl_->rt_.copies().bytes_moved() - bytes0;
  impl_->result_.messages = impl_->rt_.network().messages_sent() - messages0;
  impl_->result_.dep_pairs_tested = impl_->rt_.deps().pairs_tested();
  impl_->result_.control_busy_ns =
      impl_->rt_.machine()
          .proc(impl_->rt_.mapper().control_proc(0))
          .busy_time();
  // Single source of truth for dynamic-analysis counters: mirror every
  // component into the registry, then read AnalysisStats back out of the
  // snapshot (the registry is what bench --metrics serializes).
  support::MetricsRegistry& m = impl_->rt_.metrics();
  impl_->export_metrics(m);
  if (impl_->check_) {
    impl_->sim().set_event_graph(nullptr);
    impl_->result_.check = std::make_shared<check::CheckResult>(
        check::check(impl_->log_, impl_->graph_, impl_->p_));
    const check::CheckStats& cs = impl_->result_.check->stats;
    m.counter("check.accesses").set(cs.accesses);
    m.counter("check.hb_nodes").set(cs.hb_nodes);
    m.counter("check.hb_edges").set(cs.hb_edges);
    m.counter("check.pairs_checked").set(cs.pairs_checked);
    m.counter("check.races").set(cs.races);
  }
  impl_->result_.metrics = m.snapshot();
  {
    const std::map<std::string, double>& snap = impl_->result_.metrics;
    auto get = [&snap](const char* key) -> uint64_t {
      auto it = snap.find(key);
      return it == snap.end() ? 0 : static_cast<uint64_t>(it->second);
    };
    AnalysisStats& a = impl_->result_.analysis;
    a.dep_pairs_scanned = get("rt.dep.pairs_scanned");
    a.dep_pairs_tested = get("rt.dep.pairs_tested");
    a.dep_dependences = get("rt.dep.dependences");
    a.dep_index_queries = get("rt.dep.index_queries");
    a.dep_index_rebuilds = get("rt.dep.index_rebuilds");
    a.alias_queries = get("rt.alias.queries");
    a.alias_fast = get("rt.alias.fast");
    a.alias_cache_hits = get("rt.alias.cache_hits");
    a.overlap_queries = get("rt.overlap.queries");
    a.overlap_static = get("rt.overlap.static");
    a.overlap_cache_hits = get("rt.overlap.cache_hits");
    a.overlap_exact = get("rt.overlap.exact");
    a.isect_cache_hits = get("rt.isect_cache.hits");
    a.isect_cache_misses = get("rt.isect_cache.misses");
  }
  return impl_->result_;
}

AttributionReport Engine::attribution_report() const {
  AttributionReport out;
  if (const support::Tracer* t = impl_->tracer()) {
    out.rows = t->attribution();
  }
  return out;
}

void Engine::enable_trace() {
  if (impl_->tracer() == nullptr) {
    impl_->owned_tracer_ = std::make_unique<support::Tracer>();
    impl_->sim().set_tracer(impl_->owned_tracer_.get());
  }
}

void Engine::write_trace(const std::string& path) const {
  const support::Tracer* t = impl_->tracer();
  if (t == nullptr) {
    // Tracing disabled: still produce a valid (empty) trace-event array.
    FILE* f = std::fopen(path.c_str(), "w");
    CR_CHECK_MSG(f != nullptr, "cannot open trace file");
    std::fprintf(f, "[\n\n]\n");
    std::fclose(f);
    return;
  }
  t->write_chrome_json(path);
}

support::TraceSummary Engine::trace_summary() const {
  const support::Tracer* t = impl_->tracer();
  CR_CHECK_MSG(t != nullptr, "trace_summary requires enable_trace()");
  return t->summarize(impl_->sim().now());
}

double Engine::read_root_f64(rt::RegionId root, rt::FieldId f,
                             uint64_t pt) const {
  auto& ref = impl_->root_instance(root);
  CR_CHECK_MSG(ref.inst != rt::kNoId, "virtual-only run has no data");
  return impl_->rt_.instances()->get(ref.inst).read_f64(f, pt);
}

int64_t Engine::read_root_i64(rt::RegionId root, rt::FieldId f,
                              uint64_t pt) const {
  auto& ref = impl_->root_instance(root);
  CR_CHECK_MSG(ref.inst != rt::kNoId, "virtual-only run has no data");
  return impl_->rt_.instances()->get(ref.inst).read_i64(f, pt);
}

double Engine::scalar(ir::ScalarId id) const {
  // SPMD executions evolve scalars in the replicated shard environments;
  // they are identical across shards, so report shard 0's view. Implicit
  // executions use the main environment.
  const uint32_t env_id = impl_->envs_.count(0) ? 0u : kMainEnv;
  return *impl_->latest(env_id, id).value;
}

}  // namespace cr::exec
