// The sequential reference executor: the correctness oracle.
//
// Interprets a *source* program with literal sequential semantics — every
// region lives in exactly one master store, every task runs immediately
// and in program order, scalar reductions fold in color order. No
// simulator, no copies, no partition instances. Control replication must
// be observationally equivalent to this.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "ir/program.h"

namespace cr::exec {

struct SequentialResult {
  double read_f64(rt::RegionId root, rt::FieldId f, uint64_t point) const;
  int64_t read_i64(rt::RegionId root, rt::FieldId f, uint64_t point) const;
  double scalar(ir::ScalarId id) const;

  // Per root region: one column per field. Exposed for the executor
  // implementation and for whole-region comparisons in tests.
  struct Store {
    std::map<rt::FieldId, std::vector<double>> f64;
    std::map<rt::FieldId, std::vector<int64_t>> i64;
    const rt::IndexSpace* domain = nullptr;
  };
  std::map<rt::RegionId, Store> stores_;
  std::vector<double> scalars_;
};

SequentialResult run_sequential(const ir::Program& program);

}  // namespace cr::exec
