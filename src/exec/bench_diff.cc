#include "exec/bench_diff.h"

#include <cstdio>
#include <sstream>

#include "support/json.h"

namespace cr::exec {

namespace {

std::string read_file(const std::string& path, std::string* err) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *err = "cannot open " + path;
    return {};
  }
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// series name -> nodes -> point object.
using PointMap =
    std::map<std::string, std::map<double, const support::JsonValue*>>;

PointMap collect_points(const support::JsonValue& doc, const char* which,
                        std::vector<std::string>& errors) {
  PointMap out;
  const support::JsonValue* series = doc.get("series");
  if (series == nullptr || !series->is_array()) {
    errors.push_back(std::string(which) + ": no \"series\" array");
    return out;
  }
  for (const support::JsonValue& s : series->arr) {
    const support::JsonValue* name = s.get("name");
    const support::JsonValue* points = s.get("points");
    if (name == nullptr || !name->is_string() || points == nullptr ||
        !points->is_array()) {
      errors.push_back(std::string(which) + ": malformed series entry");
      continue;
    }
    for (const support::JsonValue& p : points->arr) {
      const support::JsonValue* nodes = p.get("nodes");
      if (nodes == nullptr || !nodes->is_number()) {
        errors.push_back(std::string(which) + ": series \"" + name->str +
                         "\": point without \"nodes\"");
        continue;
      }
      out[name->str][nodes->num] = &p;
    }
  }
  return out;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void gate_metric(const std::string& where, const std::string& metric,
                 double base, double cur, double pct, double zero_abs_eps,
                 DiffResult& out) {
  // base == 0 makes a relative threshold degenerate (0 * (1 + pct/100)
  // is still 0): fall back to an absolute epsilon so a metric that was
  // and stays (near-)zero passes, while any real growth still flags.
  const bool regressed =
      base == 0 ? cur > zero_abs_eps : cur > base * (1.0 + pct / 100.0);
  const double change = base > 0 ? (cur - base) / base * 100.0 : 0.0;
  std::ostringstream os;
  os << where << " " << metric << ": base=" << fmt(base)
     << " cur=" << fmt(cur);
  if (base > 0) {
    char chg[32];
    std::snprintf(chg, sizeof chg, "%+.2f%%", change);
    os << " (" << chg << ", limit +" << fmt(pct) << "%)";
  } else {
    os << " (zero baseline, limit abs " << fmt(zero_abs_eps) << ")";
  }
  if (regressed) {
    out.regressions.push_back("REGRESSION: " + os.str());
  } else {
    out.lines.push_back("ok: " + os.str());
  }
}

// Host times are wall-clock seconds: a negative value is the historic
// "unmeasured" sentinel (now serialized as null) and must never be
// compared as a measurement — treat it as a structural error.
void check_host_seconds(const std::string& where, const char* which,
                        const support::JsonValue& point, DiffResult& out) {
  const support::JsonValue* an = point.get("analysis");
  if (an == nullptr || !an->is_object()) return;
  const support::JsonValue* hs = an->get("host_seconds");
  if (hs != nullptr && hs->is_number() && hs->num < 0) {
    out.errors.push_back(where + ": " + which +
                         " has negative host_seconds (" + fmt(hs->num) +
                         "): unmeasured sentinel leaked into the report");
  }
}

void compare_point(const std::string& where, const support::JsonValue& base,
                   const support::JsonValue& cur, const DiffOptions& options,
                   DiffResult& out) {
  check_host_seconds(where, "baseline", base, out);
  check_host_seconds(where, "current", cur, out);
  const support::JsonValue* bm = base.get("makespan_ns");
  const support::JsonValue* cm = cur.get("makespan_ns");
  if (bm != nullptr && bm->is_number()) {
    if (cm == nullptr || !cm->is_number()) {
      out.errors.push_back(where + ": current point has no makespan_ns");
    } else {
      gate_metric(where, "makespan_ns", bm->num, cm->num,
                  options.makespan_pct, options.zero_abs_eps, out);
    }
  }
  const support::JsonValue* bmet = base.get("metrics");
  if (bmet == nullptr || !bmet->is_object()) return;
  const support::JsonValue* cmet = cur.get("metrics");
  for (const auto& [key, value] : bmet->obj) {
    if (!value.is_number()) continue;
    // Prefix routing: "host." keys are wall-clock measurements gated
    // only by host_pct (virtual-time thresholds would misread their
    // noise); "info." keys are context and never gate. Explicit
    // metric_pct entries still override either.
    const bool is_host = key.rfind("host.", 0) == 0;
    const bool is_info = key.rfind("info.", 0) == 0;
    double pct = is_info ? -1 : (is_host ? options.host_pct
                                         : options.all_pct);
    auto it = options.metric_pct.find(key);
    if (it != options.metric_pct.end()) pct = it->second;
    if (pct < 0) continue;  // not gated
    const support::JsonValue* cv =
        cmet != nullptr && cmet->is_object() ? cmet->get(key) : nullptr;
    if (cv == nullptr || !cv->is_number()) {
      out.errors.push_back(where + ": metric \"" + key +
                           "\" missing from current run");
      continue;
    }
    if (value.num < 0 || cv->num < 0) {
      // Every gated quantity is a count or a duration; a negative value
      // is an unmeasured sentinel or corruption, and a relative
      // threshold on it is meaningless.
      out.errors.push_back(where + ": metric \"" + key +
                           "\" is negative (base=" + fmt(value.num) +
                           " cur=" + fmt(cv->num) + "): refusing to gate");
      continue;
    }
    gate_metric(where, key, value.num, cv->num, pct, options.zero_abs_eps,
                out);
  }
}

// Top-level identity keys: when the baseline carries one (BENCH_mapper
// artifacts tag "app" and "mapper"), the current document must match —
// diffing a stencil cell against a circuit cell, or a balanced cell
// against an adversarial one, must read as an error, not a regression
// table.
void check_identity_key(const char* key, const support::JsonValue& base,
                        const support::JsonValue& cur, DiffResult& out) {
  const support::JsonValue* bv = base.get(key);
  if (bv == nullptr || !bv->is_string()) return;
  const support::JsonValue* cv = cur.get(key);
  if (cv == nullptr || !cv->is_string()) {
    out.errors.push_back(std::string("current run has no \"") + key +
                         "\" (baseline: \"" + bv->str + "\")");
    return;
  }
  if (cv->str != bv->str) {
    out.errors.push_back(std::string("\"") + key + "\" mismatch: baseline \"" +
                         bv->str + "\" vs current \"" + cv->str + "\"");
  }
}

}  // namespace

std::string DiffResult::to_text() const {
  std::ostringstream os;
  for (const std::string& l : lines) os << l << "\n";
  for (const std::string& r : regressions) os << r << "\n";
  for (const std::string& e : errors) os << "ERROR: " << e << "\n";
  os << (ok() ? "bench_diff: OK" : "bench_diff: FAILED") << " ("
     << regressions.size() << " regressions, " << errors.size()
     << " errors)\n";
  return os.str();
}

DiffResult bench_diff(const std::string& baseline_json,
                      const std::string& current_json,
                      const DiffOptions& options) {
  DiffResult out;
  support::JsonValue base, cur;
  std::string err;
  if (!support::json_parse(baseline_json, base, err)) {
    out.errors.push_back("baseline: " + err);
    return out;
  }
  if (!support::json_parse(current_json, cur, err)) {
    out.errors.push_back("current: " + err);
    return out;
  }
  check_identity_key("app", base, cur, out);
  check_identity_key("mapper", base, cur, out);
  const PointMap bp = collect_points(base, "baseline", out.errors);
  const PointMap cp = collect_points(cur, "current", out.errors);
  for (const auto& [name, pts] : bp) {
    auto cs = cp.find(name);
    if (cs == cp.end()) {
      out.errors.push_back("series \"" + name + "\" missing from current run");
      continue;
    }
    for (const auto& [nodes, point] : pts) {
      auto cpt = cs->second.find(nodes);
      const std::string where =
          "[" + name + ", " + fmt(nodes) + " nodes]";
      if (cpt == cs->second.end()) {
        out.errors.push_back(where + " missing from current run");
        continue;
      }
      compare_point(where, *point, *cpt->second, options, out);
    }
  }
  return out;
}

DiffResult bench_diff_files(const std::string& baseline_path,
                            const std::string& current_path,
                            const DiffOptions& options) {
  DiffResult out;
  std::string err;
  const std::string base = read_file(baseline_path, &err);
  if (!err.empty()) {
    out.errors.push_back(err);
    return out;
  }
  const std::string cur = read_file(current_path, &err);
  if (!err.empty()) {
    out.errors.push_back(err);
    return out;
  }
  return bench_diff(base, cur, options);
}

}  // namespace cr::exec
