#include "exec/implicit_exec.h"

#include "support/check.h"

namespace cr::exec {

rt::RuntimeConfig runtime_config(uint32_t nodes, uint32_t cores_per_node,
                                 const CostModel& cost, bool real_data) {
  rt::RuntimeConfig config;
  config.machine.nodes = nodes;
  config.machine.cores_per_node = cores_per_node;
  config.network = cost.network;
  config.real_data = real_data;
  return config;
}

PreparedRun prepare(rt::Runtime& rt, ir::Program source,
                    const ExecConfig& config) {
  ExecConfig cfg = config;
  // Per-pass counters land in the runtime's registry (callers may still
  // point the pipeline at their own registry beforehand).
  if (cfg.pipeline.metrics == nullptr) {
    cfg.pipeline.metrics = &rt.metrics();
  }
  PreparedRun out;
  out.program = std::make_unique<ir::Program>(std::move(source));
  if (cfg.mode == ExecMode::kSpmd) {
    if (cfg.pipeline.num_shards == 0) {
      cfg.pipeline.num_shards = rt.machine().nodes();  // one shard per node
    }
    out.report = passes::control_replicate(*out.program, cfg.pipeline);
    CR_CHECK_MSG(out.report.applied, out.report.failure.c_str());
  } else {
    out.report = passes::prepare_distributed(*out.program, cfg.pipeline);
  }
  out.engine = std::make_unique<Engine>(rt, *out.program, cfg);
  return out;
}

PreparedRun prepare_implicit(rt::Runtime& rt, ir::Program source,
                             const CostModel& cost,
                             passes::PipelineOptions options) {
  ExecConfig config;
  config.pipeline = options;
  config.cost = cost;
  config.mode = ExecMode::kImplicit;
  return prepare(rt, std::move(source), config);
}

}  // namespace cr::exec
