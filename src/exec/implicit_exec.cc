#include "exec/implicit_exec.h"

namespace cr::exec {

rt::RuntimeConfig runtime_config(uint32_t nodes, uint32_t cores_per_node,
                                 const CostModel& cost, bool real_data) {
  rt::RuntimeConfig config;
  config.machine.nodes = nodes;
  config.machine.cores_per_node = cores_per_node;
  config.network = cost.network;
  config.mapper.reserved_cores = cost.reserved_cores;
  config.real_data = real_data;
  return config;
}

PreparedRun prepare_implicit(rt::Runtime& rt, ir::Program source,
                             const CostModel& cost,
                             passes::PipelineOptions options) {
  PreparedRun out;
  out.program = std::make_unique<ir::Program>(std::move(source));
  out.report = passes::prepare_distributed(*out.program, options);
  out.engine = std::make_unique<Engine>(rt, *out.program, cost,
                                        ExecMode::kImplicit);
  return out;
}

}  // namespace cr::exec
