// The implicit-parallelism executor ("Regent w/o CR"): prepares the
// source program for distributed memory (projection normalization, data
// replication, reductions, placement, intersections — the work Legion's
// runtime performs) and interprets it with a single control thread on
// node 0 that issues every point task and every copy in the machine.
#pragma once

#include <memory>

#include "exec/engine.h"
#include "passes/pipeline.h"

namespace cr::exec {

// A transformed program plus the engine bound to it. Heap-allocates the
// program so the engine's reference stays valid across moves.
struct PreparedRun {
  std::unique_ptr<ir::Program> program;
  passes::PipelineReport report;
  std::unique_ptr<Engine> engine;

  ExecutionResult run() { return engine->run(); }
};

// Convenience: a runtime configuration consistent with a cost model.
rt::RuntimeConfig runtime_config(uint32_t nodes, uint32_t cores_per_node,
                                 const CostModel& cost, bool real_data);

// The one entry point: transforms `source` per config.mode (the full
// control-replication pipeline for kSpmd, distributed-memory preparation
// for kImplicit) and binds an engine with the configured cost model and
// instrumentation. config.pipeline.num_shards == 0 defaults to one shard
// per node.
PreparedRun prepare(rt::Runtime& rt, ir::Program source,
                    const ExecConfig& config);

// Deprecated shim (pre-ExecConfig signature); prefer prepare().
PreparedRun prepare_implicit(rt::Runtime& rt, ir::Program source,
                             const CostModel& cost,
                             passes::PipelineOptions options = {});

}  // namespace cr::exec
