// Reporting helpers for the benchmark harness: weak-scaling rows in the
// style of the paper's Figures 6-9 (throughput per node and parallel
// efficiency per configuration).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/event.h"
#include "support/trace.h"

namespace cr::exec {

// Per-source-statement copy/sync rollup of a traced run: which user
// statements induced the data movement and synchronization the pipeline
// inserted (see ir::Provenance). Rows come pre-sorted by total virtual
// time descending.
struct AttributionReport {
  std::vector<support::TraceAttributionRow> rows;
  bool empty() const { return rows.empty(); }
  // Aligned text table of the top-k rows (all rows when top_k == 0).
  std::string to_text(size_t top_k = 10) const;
};

// Host-side dynamic-analysis work of one execution: how much dependence
// analysis, region aliasing, and intersection work the runtime actually
// performed, and how well the acceleration structures absorbed it. The
// virtual-time charge is always based on dep_pairs_scanned (what the
// simulated implicit master pays); the other counters measure only this
// reproduction's host cost. Filled from ExecutionResult by Engine::run()
// and rendered by the benches' --selftime analysis block.
struct AnalysisStats {
  // Dependence tracker (rt::DependenceTracker).
  uint64_t dep_pairs_scanned = 0;  // exhaustive-scan pairs (charge basis)
  uint64_t dep_pairs_tested = 0;   // exact conflict tests actually run
  uint64_t dep_dependences = 0;
  uint64_t dep_index_queries = 0;
  uint64_t dep_index_rebuilds = 0;
  // Region-forest aliasing (rt::RegionForest memo).
  uint64_t alias_queries = 0;
  uint64_t alias_fast = 0;       // resolved by an O(1) structural rule
  uint64_t alias_cache_hits = 0;
  uint64_t overlap_queries = 0;
  uint64_t overlap_static = 0;   // resolved without interval data
  uint64_t overlap_cache_hits = 0;
  uint64_t overlap_exact = 0;    // interval merges actually performed
  // Complete-intersection cache (rt::IntersectionCache).
  uint64_t isect_cache_hits = 0;
  uint64_t isect_cache_misses = 0;

  // Host wall-clock of the run, seconds; < 0 when not measured (set by
  // the bench harness under --selftime, not by the engine). The
  // sentinel never reaches serialized reports: to_json() emits null for
  // an unmeasured value, and bench_diff rejects negative host times.
  double host_seconds = -1.0;

  // Prefilter effectiveness: fraction of exhaustive pairs skipped.
  double dep_prefilter_ratio() const {
    return dep_pairs_scanned > 0
               ? static_cast<double>(dep_pairs_tested) /
                     static_cast<double>(dep_pairs_scanned)
               : 0;
  }

  // Multi-line human-readable block (indented two spaces).
  std::string to_text() const;
  // One flat JSON object (no trailing newline).
  std::string to_json() const;
};

struct ScalingPoint {
  uint32_t nodes = 0;
  double seconds = 0;           // virtual seconds for the measured window
  double work_per_node = 0;     // elements (points/cells/zones) per node
  double iterations = 0;

  // Machine-time category fractions from a traced run (--trace); the
  // four fractions sum to 1. Valid only when has_breakdown is set.
  bool has_breakdown = false;
  double compute_frac = 0;
  double copy_frac = 0;
  double sync_frac = 0;
  double idle_frac = 0;

  // Analysis counters of the run behind this point (populated when the
  // bench recorded them); rendered as an appendix table by to_table().
  bool has_analysis = false;
  AnalysisStats analysis;

  // Full metrics snapshot of the run (bench --metrics): the flattened
  // registry of ExecutionResult::metrics, plus the raw makespan so
  // bench_diff can gate on it directly. Virtual-time quantities only —
  // never host wall-clock.
  bool has_metrics = false;
  double makespan_ns = 0;
  std::map<std::string, double> metrics;
  // Copy/sync provenance attribution of the traced run, if any.
  std::vector<support::TraceAttributionRow> attribution;

  // elements processed per second per node
  double throughput_per_node() const {
    return seconds > 0 ? work_per_node * iterations / seconds : 0;
  }
};

struct ScalingSeries {
  std::string name;
  std::vector<ScalingPoint> points;

  // Efficiency of the N-node point relative to this series' 1-node
  // throughput (weak scaling).
  double efficiency_at(uint32_t nodes) const;
};

struct ScalingReport {
  std::string title;
  std::string unit;  // e.g. "10^6 points/s"
  double unit_scale = 1e6;
  std::vector<ScalingSeries> series;

  // Render the figure as an aligned text table, one row per node count.
  std::string to_table() const;
};

// Duration helper: virtual ns -> seconds.
inline double to_seconds(sim::Time ns) {
  return static_cast<double>(ns) * 1e-9;
}

}  // namespace cr::exec
