// Reporting helpers for the benchmark harness: weak-scaling rows in the
// style of the paper's Figures 6-9 (throughput per node and parallel
// efficiency per configuration).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/event.h"

namespace cr::exec {

struct ScalingPoint {
  uint32_t nodes = 0;
  double seconds = 0;           // virtual seconds for the measured window
  double work_per_node = 0;     // elements (points/cells/zones) per node
  double iterations = 0;

  // Machine-time category fractions from a traced run (--trace); the
  // four fractions sum to 1. Valid only when has_breakdown is set.
  bool has_breakdown = false;
  double compute_frac = 0;
  double copy_frac = 0;
  double sync_frac = 0;
  double idle_frac = 0;

  // elements processed per second per node
  double throughput_per_node() const {
    return seconds > 0 ? work_per_node * iterations / seconds : 0;
  }
};

struct ScalingSeries {
  std::string name;
  std::vector<ScalingPoint> points;

  // Efficiency of the N-node point relative to this series' 1-node
  // throughput (weak scaling).
  double efficiency_at(uint32_t nodes) const;
};

struct ScalingReport {
  std::string title;
  std::string unit;  // e.g. "10^6 points/s"
  double unit_scale = 1e6;
  std::vector<ScalingSeries> series;

  // Render the figure as an aligned text table, one row per node count.
  std::string to_table() const;
};

// Duration helper: virtual ns -> seconds.
inline double to_seconds(sim::Time ns) {
  return static_cast<double>(ns) * 1e-9;
}

}  // namespace cr::exec
