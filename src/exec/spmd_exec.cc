#include "exec/spmd_exec.h"

namespace cr::exec {

PreparedRun prepare_spmd(rt::Runtime& rt, ir::Program source,
                         const CostModel& cost,
                         passes::PipelineOptions options) {
  ExecConfig config;
  config.pipeline = options;
  config.cost = cost;
  config.mode = ExecMode::kSpmd;
  return prepare(rt, std::move(source), config);
}

}  // namespace cr::exec
