#include "exec/spmd_exec.h"

#include "support/check.h"

namespace cr::exec {

PreparedRun prepare_spmd(rt::Runtime& rt, ir::Program source,
                         const CostModel& cost,
                         passes::PipelineOptions options) {
  if (options.num_shards == 0) {
    options.num_shards = rt.machine().nodes();  // one shard per node
  }
  PreparedRun out;
  out.program = std::make_unique<ir::Program>(std::move(source));
  out.report = passes::control_replicate(*out.program, options);
  CR_CHECK_MSG(out.report.applied, out.report.failure.c_str());
  out.engine =
      std::make_unique<Engine>(rt, *out.program, cost, ExecMode::kSpmd);
  return out;
}

}  // namespace cr::exec
