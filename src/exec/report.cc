#include "exec/report.h"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>

namespace cr::exec {

double ScalingSeries::efficiency_at(uint32_t nodes) const {
  const ScalingPoint* base = nullptr;
  const ScalingPoint* at = nullptr;
  for (const ScalingPoint& p : points) {
    if (base == nullptr || p.nodes < base->nodes) base = &p;
    if (p.nodes == nodes) at = &p;
  }
  if (base == nullptr || at == nullptr) return 0;
  const double b = base->throughput_per_node();
  return b > 0 ? at->throughput_per_node() / b : 0;
}

std::string ScalingReport::to_table() const {
  std::set<uint32_t> node_counts;
  for (const ScalingSeries& s : series) {
    for (const ScalingPoint& p : s.points) node_counts.insert(p.nodes);
  }
  std::ostringstream os;
  os << title << "  [throughput/node in " << unit
     << "; eff = weak-scaling parallel efficiency]\n";
  os << std::left << std::setw(8) << "nodes";
  for (const ScalingSeries& s : series) {
    os << std::setw(22) << s.name + " (eff)";
  }
  os << "\n";
  for (uint32_t n : node_counts) {
    os << std::left << std::setw(8) << n;
    for (const ScalingSeries& s : series) {
      const ScalingPoint* at = nullptr;
      for (const ScalingPoint& p : s.points) {
        if (p.nodes == n) at = &p;
      }
      if (at == nullptr) {
        os << std::setw(22) << "-";
        continue;
      }
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(1)
           << at->throughput_per_node() / unit_scale << " ("
           << std::setprecision(0) << s.efficiency_at(n) * 100 << "%)";
      os << std::setw(22) << cell.str();
    }
    os << "\n";
  }
  // Profile appendix: category breakdown per traced point, if any series
  // carried one (populated by bench --trace).
  bool any_breakdown = false;
  for (const ScalingSeries& s : series) {
    for (const ScalingPoint& p : s.points) any_breakdown |= p.has_breakdown;
  }
  if (any_breakdown) {
    os << "\nmachine-time breakdown  [% of nodes x cores x makespan]\n";
    os << std::left << std::setw(8) << "nodes";
    for (const ScalingSeries& s : series) {
      os << std::setw(30) << s.name + " (comp/copy/sync/idle)";
    }
    os << "\n";
    for (uint32_t n : node_counts) {
      os << std::left << std::setw(8) << n;
      for (const ScalingSeries& s : series) {
        const ScalingPoint* at = nullptr;
        for (const ScalingPoint& p : s.points) {
          if (p.nodes == n) at = &p;
        }
        if (at == nullptr || !at->has_breakdown) {
          os << std::setw(30) << "-";
          continue;
        }
        std::ostringstream cell;
        cell << std::fixed << std::setprecision(0)
             << at->compute_frac * 100 << "/" << at->copy_frac * 100 << "/"
             << at->sync_frac * 100 << "/" << at->idle_frac * 100 << "%";
        os << std::setw(30) << cell.str();
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace cr::exec
