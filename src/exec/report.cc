#include "exec/report.h"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>

namespace cr::exec {

namespace {

double rate(uint64_t part, uint64_t whole) {
  return whole > 0 ? static_cast<double>(part) / static_cast<double>(whole)
                   : 0;
}

}  // namespace

std::string AttributionReport::to_text(size_t top_k) const {
  std::ostringstream os;
  os << "copy/sync attribution (by source statement)\n";
  if (rows.empty()) {
    os << "  (nothing attributed; run with tracing enabled)\n";
    return os.str();
  }
  size_t shown = 0;
  for (const support::TraceAttributionRow& r : rows) {
    if (top_k != 0 && shown++ >= top_k) break;
    os << "  #" << r.source << " " << std::left << std::setw(16) << r.label
       << std::right << std::fixed << std::setprecision(3) << "  copy "
       << std::setw(10) << r.copy_ns * 1e-6 << " ms  sync " << std::setw(10)
       << r.sync_ns * 1e-6 << " ms  (" << r.spans << " spans)\n";
  }
  return os.str();
}

std::string AnalysisStats::to_text() const {
  std::ostringstream os;
  os << std::fixed;
  os << "  dependence: scanned=" << dep_pairs_scanned
     << " tested=" << dep_pairs_tested << " ("
     << std::setprecision(1) << dep_prefilter_ratio() * 100
     << "% of exhaustive), found=" << dep_dependences
     << ", index queries=" << dep_index_queries
     << " rebuilds=" << dep_index_rebuilds << "\n";
  os << "  aliasing:   queries=" << alias_queries << " (fast "
     << std::setprecision(1) << rate(alias_fast, alias_queries) * 100
     << "%, cached " << rate(alias_cache_hits, alias_queries) * 100
     << "%)\n";
  os << "  overlap:    queries=" << overlap_queries << " (static "
     << std::setprecision(1) << rate(overlap_static, overlap_queries) * 100
     << "%, cached " << rate(overlap_cache_hits, overlap_queries) * 100
     << "%, exact merges=" << overlap_exact << ")\n";
  os << "  intersect:  cache hits=" << isect_cache_hits
     << " misses=" << isect_cache_misses << " (hit rate "
     << std::setprecision(1)
     << rate(isect_cache_hits, isect_cache_hits + isect_cache_misses) * 100
     << "%)\n";
  if (host_seconds >= 0) {
    os << "  host wall-clock: " << std::setprecision(3) << host_seconds
       << " s\n";
  }
  return os.str();
}

std::string AnalysisStats::to_json() const {
  std::ostringstream os;
  os << "{";
  os << "\"dep_pairs_scanned\":" << dep_pairs_scanned
     << ",\"dep_pairs_tested\":" << dep_pairs_tested
     << ",\"dep_dependences\":" << dep_dependences
     << ",\"dep_index_queries\":" << dep_index_queries
     << ",\"dep_index_rebuilds\":" << dep_index_rebuilds
     << ",\"alias_queries\":" << alias_queries
     << ",\"alias_fast\":" << alias_fast
     << ",\"alias_cache_hits\":" << alias_cache_hits
     << ",\"overlap_queries\":" << overlap_queries
     << ",\"overlap_static\":" << overlap_static
     << ",\"overlap_cache_hits\":" << overlap_cache_hits
     << ",\"overlap_exact\":" << overlap_exact
     << ",\"isect_cache_hits\":" << isect_cache_hits
     << ",\"isect_cache_misses\":" << isect_cache_misses;
  if (host_seconds >= 0) {
    os << ",\"host_seconds\":" << std::setprecision(6) << std::fixed
       << host_seconds;
  } else {
    // Unmeasured sentinel: emit an explicit null rather than leaking
    // -1.0 into the JSON — consumers (bench_diff) reject negative host
    // times as structurally invalid.
    os << ",\"host_seconds\":null";
  }
  os << "}";
  return os.str();
}

double ScalingSeries::efficiency_at(uint32_t nodes) const {
  const ScalingPoint* base = nullptr;
  const ScalingPoint* at = nullptr;
  for (const ScalingPoint& p : points) {
    if (base == nullptr || p.nodes < base->nodes) base = &p;
    if (p.nodes == nodes) at = &p;
  }
  if (base == nullptr || at == nullptr) return 0;
  const double b = base->throughput_per_node();
  return b > 0 ? at->throughput_per_node() / b : 0;
}

std::string ScalingReport::to_table() const {
  std::set<uint32_t> node_counts;
  for (const ScalingSeries& s : series) {
    for (const ScalingPoint& p : s.points) node_counts.insert(p.nodes);
  }
  std::ostringstream os;
  os << title << "  [throughput/node in " << unit
     << "; eff = weak-scaling parallel efficiency]\n";
  os << std::left << std::setw(8) << "nodes";
  for (const ScalingSeries& s : series) {
    os << std::setw(22) << s.name + " (eff)";
  }
  os << "\n";
  for (uint32_t n : node_counts) {
    os << std::left << std::setw(8) << n;
    for (const ScalingSeries& s : series) {
      const ScalingPoint* at = nullptr;
      for (const ScalingPoint& p : s.points) {
        if (p.nodes == n) at = &p;
      }
      if (at == nullptr) {
        os << std::setw(22) << "-";
        continue;
      }
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(1)
           << at->throughput_per_node() / unit_scale << " ("
           << std::setprecision(0) << s.efficiency_at(n) * 100 << "%)";
      os << std::setw(22) << cell.str();
    }
    os << "\n";
  }
  // Profile appendix: category breakdown per traced point, if any series
  // carried one (populated by bench --trace).
  bool any_breakdown = false;
  for (const ScalingSeries& s : series) {
    for (const ScalingPoint& p : s.points) any_breakdown |= p.has_breakdown;
  }
  if (any_breakdown) {
    os << "\nmachine-time breakdown  [% of nodes x cores x makespan]\n";
    os << std::left << std::setw(8) << "nodes";
    for (const ScalingSeries& s : series) {
      os << std::setw(30) << s.name + " (comp/copy/sync/idle)";
    }
    os << "\n";
    for (uint32_t n : node_counts) {
      os << std::left << std::setw(8) << n;
      for (const ScalingSeries& s : series) {
        const ScalingPoint* at = nullptr;
        for (const ScalingPoint& p : s.points) {
          if (p.nodes == n) at = &p;
        }
        if (at == nullptr || !at->has_breakdown) {
          os << std::setw(30) << "-";
          continue;
        }
        std::ostringstream cell;
        cell << std::fixed << std::setprecision(0)
             << at->compute_frac * 100 << "/" << at->copy_frac * 100 << "/"
             << at->sync_frac * 100 << "/" << at->idle_frac * 100 << "%";
        os << std::setw(30) << cell.str();
      }
      os << "\n";
    }
  }
  // Analysis appendix: dynamic-analysis counters per recorded point (the
  // --selftime instrumentation of the dependence/aliasing hot path).
  for (const ScalingSeries& s : series) {
    for (const ScalingPoint& p : s.points) {
      if (!p.has_analysis) continue;
      os << "\nanalysis [" << s.name << ", " << p.nodes << " nodes]\n"
         << p.analysis.to_text();
    }
  }
  return os.str();
}

}  // namespace cr::exec
