// The SPMD executor ("Regent with CR"): runs the full control replication
// pipeline on the source program and interprets the resulting shard-based
// program — one long-running control thread per node, point-to-point
// synchronization, dynamic collectives.
#pragma once

#include "exec/implicit_exec.h"

namespace cr::exec {

// Deprecated shim over prepare() (see implicit_exec.h); prefer building
// an ExecConfig with mode = kSpmd. `options.num_shards` defaults to one
// shard per node when zero.
PreparedRun prepare_spmd(rt::Runtime& rt, ir::Program source,
                         const CostModel& cost,
                         passes::PipelineOptions options = {});

}  // namespace cr::exec
