#include "exec/trace_replay.h"

#include <utility>

#include "support/check.h"

namespace cr::exec {

uint64_t requirement_fingerprint(uint64_t tag, uint64_t extra,
                                 const rt::Requirement& req) {
  uint64_t h = support::hash_mix(tag + 0x517cc1b727220a95ull);
  h = support::hash_mix(h ^ extra);
  h = support::hash_mix(h ^ static_cast<uint64_t>(req.region));
  h = support::hash_mix(h ^ (static_cast<uint64_t>(req.privilege) |
                             (static_cast<uint64_t>(req.redop) << 8)));
  h = support::hash_mix(h ^ static_cast<uint64_t>(req.fields.size()));
  for (rt::FieldId f : req.fields) {
    h = support::hash_mix(h ^ static_cast<uint64_t>(f));
  }
  return h;
}

void TraceReplay::enter_loop(uint64_t cur_op_id) {
  ++depth_;
  if (depth_ != 1) return;
  loop_entry_op_ = cur_op_id;
  in_iteration_ = false;
  capture_active_ = false;
  replay_active_ = false;
  have_prev_ = false;
  have_tmpl_ = false;
  prev_.clear();
  cur_.clear();
  tmpl_.clear();
  iter_index_ = 0;
}

void TraceReplay::begin_iteration() {
  if (depth_ != 1) return;
  if (in_iteration_) finish_iteration();
  in_iteration_ = true;
  ++iter_index_;
  if (have_tmpl_ && tmpl_forest_sig_ != forest_signature()) invalidate();
  if (have_tmpl_ && invalidate_every_ > 0 &&
      iter_index_ % invalidate_every_ == 0) {
    invalidate();
  }
  if (have_tmpl_) {
    replay_active_ = true;
    replay_idx_ = 0;
  } else {
    capture_active_ = true;
    cur_.clear();
  }
}

void TraceReplay::exit_loop() {
  --depth_;
  if (depth_ != 0) return;
  if (in_iteration_) finish_iteration();
  in_iteration_ = false;
}

void TraceReplay::finish_iteration() {
  if (replay_active_) {
    if (replay_idx_ == tmpl_.size()) {
      ++replays_;
    } else {
      // The iteration ended with records still expected: the stream
      // shrank without a fingerprint miss.
      invalidate();
    }
    replay_active_ = false;
    return;
  }
  // capture_active_ is false for the tail of an iteration that
  // invalidated mid-way; a partial capture can never validate, so
  // capturing restarts at the next iteration boundary instead.
  if (!capture_active_) return;
  capture_active_ = false;
  if (have_prev_ && prev_ == cur_) {
    tmpl_ = std::move(cur_);
    have_tmpl_ = true;
    tmpl_forest_sig_ = forest_signature();
    ++captures_;
    have_prev_ = false;
    prev_.clear();
  } else {
    prev_ = std::move(cur_);
    have_prev_ = true;
  }
  cur_.clear();
}

void TraceReplay::invalidate() {
  ++invalidations_;
  have_tmpl_ = false;
  tmpl_.clear();
  replay_active_ = false;
  capture_active_ = false;
  have_prev_ = false;
  prev_.clear();
  cur_.clear();
}

void TraceReplay::record(uint64_t fingerprint, uint64_t op_id,
                         const rt::Requirement& req, sim::Event completion,
                         std::vector<sim::Event>& pre) {
  completion_of_.emplace(op_id, completion);

  if (replay_active_) {
    if (replay_idx_ < tmpl_.size() && tmpl_[replay_idx_].fp == fingerprint) {
      const Entry& e = tmpl_[replay_idx_];
      ++replay_idx_;
      prune_scratch_.clear();
      for (const PruneRef& p : e.prunes) {
        prune_scratch_.push_back(
            {p.field, resolve(p.op, op_id), p.region, p.privilege, p.redop});
      }
      const uint64_t scanned =
          deps_.replay(op_id, req, completion, prune_scratch_, e.found);
      CR_CHECK_MSG(scanned == e.scanned,
                   "trace replay: pairs_scanned diverged from the captured "
                   "iteration");
      for (const OpRef& d : e.deps) {
        auto it = completion_of_.find(resolve(d, op_id));
        CR_CHECK_MSG(it != completion_of_.end(),
                     "trace replay: predecessor op unknown");
        pre.push_back(it->second);
      }
      pairs_skipped_ += scanned;
      return;
    }
    invalidate();  // fingerprint miss: analyze from here on
  }

  if (!capture_active_) {
    std::vector<sim::Event> deps = deps_.record(op_id, req, completion);
    pre.insert(pre.end(), deps.begin(), deps.end());
    return;
  }

  rt::DependenceTracker::Capture raw;
  const uint64_t scanned0 = deps_.pairs_scanned();
  const uint64_t found0 = deps_.dependences_found();
  std::vector<sim::Event> deps = deps_.record(op_id, req, completion, &raw);
  pre.insert(pre.end(), deps.begin(), deps.end());

  Entry e;
  e.fp = fingerprint;
  e.scanned = deps_.pairs_scanned() - scanned0;
  e.found = deps_.dependences_found() - found0;
  e.deps.reserve(raw.dep_ops.size());
  for (uint64_t ref : raw.dep_ops) e.deps.push_back(encode(ref, op_id));
  e.prunes.reserve(raw.prunes.size());
  for (const auto& p : raw.prunes) {
    e.prunes.push_back(
        {p.field, encode(p.op_id, op_id), p.region, p.privilege, p.redop});
  }
  cur_.push_back(std::move(e));
}

}  // namespace cr::exec
