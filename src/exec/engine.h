// The execution engine: interprets transformed programs on the simulated
// machine, in two modes.
//
//  - kImplicit (paper's "Regent w/o CR"): a single control thread on
//    node 0 issues every point task and every runtime copy in the
//    machine, paying dependence analysis and mapping costs per operation
//    — the O(N) control bottleneck of paper §1.
//  - kSpmd (paper's "Regent with CR"): one long-running shard control
//    thread per node issues only its owned operations; cross-shard
//    coherence comes from the compiler-inserted copies and point-to-point
//    synchronization (events attached to producers and consumers), and
//    scalar reductions use dynamic collectives.
//
// Execution is deferred (paper §4.1): control threads never block; they
// emit operations whose preconditions are events, and the DES resolves
// the timeline. In real-data mode kernels and copies move actual field
// data, which is how the transformation is validated against the
// sequential oracle.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/checker.h"
#include "exec/cost_model.h"
#include "exec/exec_config.h"
#include "exec/report.h"
#include "ir/program.h"
#include "rt/barrier.h"
#include "rt/collective.h"
#include "rt/runtime.h"
#include "support/host_clock.h"
#include "support/trace.h"

namespace cr::exec {

struct ExecutionResult {
  sim::Time makespan_ns = 0;
  uint64_t point_tasks = 0;
  uint64_t copies_issued = 0;
  uint64_t copies_skipped = 0;
  uint64_t bytes_moved = 0;
  uint64_t messages = 0;
  uint64_t dep_pairs_tested = 0;
  uint64_t intersection_pairs = 0;
  sim::Time control_busy_ns = 0;  // busy time of the node-0 control core
  // Host-side dynamic-analysis counters (dependence index, aliasing
  // memo, intersection cache); virtual time depends only on
  // analysis.dep_pairs_scanned, never on the cache effectiveness.
  AnalysisStats analysis;
  // Race-checker verdict; set only when ExecConfig::check was enabled.
  std::shared_ptr<check::CheckResult> check;
  // Flattened snapshot of the runtime's MetricsRegistry at end of run:
  // every "sim." / "rt." / "passes." / "exec." / "check." counter, taken
  // after all of the above are mirrored in. Virtual-time and count
  // quantities only (safe to diff across hosts).
  std::map<std::string, double> metrics;
  // Host-phase profile of the windowed backend; set only when
  // ExecConfig::host_profile was enabled with workers >= 1. Wall-clock
  // quantities — deliberately kept out of `metrics` (that snapshot must
  // be bit-identical across hosts and worker counts).
  std::shared_ptr<support::HostProfile> host_profile;
};

class Engine {
 public:
  // `program` must already be transformed (prepare_distributed for
  // kImplicit, control_replicate for kSpmd) and must outlive the engine.
  // config.pipeline is ignored here — it belongs to prepare(), which
  // runs the passes and then constructs the engine with the same config.
  Engine(rt::Runtime& rt, const ir::Program& program,
         const ExecConfig& config);
  // Deprecated shim (pre-ExecConfig signature); prefer the above.
  Engine(rt::Runtime& rt, const ir::Program& program, const CostModel& cost,
         ExecMode mode);
  ~Engine();

  // Unrolls the program into the simulator and runs it to completion.
  ExecutionResult run();

  // Record the virtual timeline of the run; call before run(). Attaches
  // an engine-owned support::Tracer to the simulator unless the caller
  // already attached one (e.g. bench --trace).
  void enable_trace();
  // Write the recorded timeline as a Chrome trace-event JSON file
  // (open in chrome://tracing or Perfetto): pid = node, tid = core
  // (plus NIC/memory tracks and a synthetic "runtime" process).
  void write_trace(const std::string& path) const;
  // Category breakdown + critical path of the traced run; call after
  // run() with tracing enabled.
  support::TraceSummary trace_summary() const;
  // Per-source-statement copy/sync rollup of the traced run (empty when
  // tracing was disabled); call after run().
  AttributionReport attribution_report() const;

  // Post-run access to results (real-data mode).
  double read_root_f64(rt::RegionId root, rt::FieldId f, uint64_t pt) const;
  int64_t read_root_i64(rt::RegionId root, rt::FieldId f, uint64_t pt) const;
  // Final value of a scalar in the main (or implicit) environment.
  double scalar(ir::ScalarId id) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace cr::exec
