// Steady-state launch-stream trace capture & replay (Legion's physical
// tracing, applied to this reproduction's dependence analysis; see
// DESIGN.md "Trace capture & replay").
//
// The implicit engine's per-launch analysis cost has two parts: the
// virtual time the simulated control thread is charged (pairs_scanned —
// the paper's without-CR scaling bottleneck, which replay must NOT
// change) and the host time this reproduction spends re-deriving the
// same dependence edges every iteration (interval-index queries, exact
// alias/overlap tests — which replay eliminates). The recorder watches
// the dependence-record stream of the outermost time loop, fingerprints
// each requirement, and once two consecutive iterations produce
// identical fingerprints AND identical encoded outcomes, installs an
// immutable TraceTemplate. Subsequent iterations replay the template:
// preconditions are resolved from op ids, epoch prunes are applied by
// identity, and the tracker's live state is maintained throughout — so
// a fingerprint miss at ANY operation invalidates the template and
// falls back to analysis mid-iteration with no special cases.
//
// Why two matching iterations imply steady state: op references are
// encoded as iteration-relative deltas for ops issued inside the loop
// and absolute ids for ops from before it. A user pruned externally
// (absolute reference) cannot be pruned again next iteration — it is
// already dead — so an absolute prune appearing in both compared
// iterations is impossible; all prunes in a validated template are
// internal, the set of live pre-loop users is constant, and the field
// states are shift-stable from one iteration to the next by induction.
// The tracker cross-checks pairs_scanned on every replayed record as a
// loud backstop (CR_CHECK, not an invalidation).
//
// Capture granularity: dependence analysis only. Copy pairs and
// intersections are already memoized per statement by the engine
// (iteration-invariant by construction), so replay leaves those caches
// untouched rather than duplicating them into the template.
//
// Invalidation: fingerprint miss, record-count mismatch at an iteration
// boundary, region-forest growth (regions or partitions created since
// template install), or the forced test knob
// ExecConfig::replay_invalidate_every. A pipeline change produces a new
// Engine and thus trivially starts with no template.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rt/dependence.h"
#include "rt/region_tree.h"
#include "rt/task.h"
#include "sim/event.h"
#include "support/hash.h"

namespace cr::exec {

// Stable hash of one dependence requirement as issued by the engine:
// op kind tag + statement identity (`extra`) + region + privilege +
// reduction op + field set, chained through support::hash_mix.
uint64_t requirement_fingerprint(uint64_t tag, uint64_t extra,
                                 const rt::Requirement& req);

class TraceReplay {
 public:
  TraceReplay(rt::DependenceTracker& deps, const rt::RegionForest& forest,
              uint64_t invalidate_every)
      : deps_(deps), forest_(forest), invalidate_every_(invalidate_every) {}

  // Loop hooks. Only the outermost time loop is traced; nested loops
  // unroll into their enclosing iteration's record stream. `cur_op_id`
  // is the engine's last issued op id — ops with larger ids are
  // loop-internal for encoding purposes.
  void enter_loop(uint64_t cur_op_id);
  void begin_iteration();
  void exit_loop();

  // Route one dependence record through capture/validate/replay.
  // Appends the operation's precondition events to `pre` — bit-identical
  // to what DependenceTracker::record would have returned, in the same
  // order.
  void record(uint64_t fingerprint, uint64_t op_id,
              const rt::Requirement& req, sim::Event completion,
              std::vector<sim::Event>& pre);

  uint64_t captures() const { return captures_; }
  uint64_t replays() const { return replays_; }
  uint64_t invalidations() const { return invalidations_; }
  // pairs_scanned charged through replayed records, i.e. exact conflict
  // tests the analysis path no longer performs.
  uint64_t pairs_skipped() const { return pairs_skipped_; }

 private:
  // Iteration-stable op reference: internal ops (issued inside the
  // loop) by distance from the referencing op, external ops by absolute
  // id (they exist in every iteration or in none).
  struct OpRef {
    bool internal = false;
    uint64_t v = 0;
    bool operator==(const OpRef&) const = default;
  };
  struct PruneRef {
    rt::FieldId field = 0;
    OpRef op;
    rt::RegionId region = rt::kNoId;
    rt::Privilege privilege = rt::Privilege::kReadOnly;
    rt::ReduceOp redop = rt::ReduceOp::kSum;
    bool operator==(const PruneRef&) const = default;
  };
  struct Entry {
    uint64_t fp = 0;
    uint64_t scanned = 0;  // pairs_scanned delta (cross-checked at replay)
    uint64_t found = 0;    // dependences_found delta
    std::vector<OpRef> deps;  // post-dedup predecessors, in push order
    std::vector<PruneRef> prunes;
    bool operator==(const Entry&) const = default;
  };

  void finish_iteration();
  void invalidate();
  OpRef encode(uint64_t ref, uint64_t cur) const {
    if (ref > loop_entry_op_) return {true, cur - ref};
    return {false, ref};
  }
  uint64_t resolve(const OpRef& r, uint64_t cur) const {
    return r.internal ? cur - r.v : r.v;
  }
  uint64_t forest_signature() const {
    return support::hash_mix(forest_.num_regions() ^
                             support::hash_mix(forest_.num_partitions()));
  }

  rt::DependenceTracker& deps_;
  const rt::RegionForest& forest_;
  const uint64_t invalidate_every_;

  int depth_ = 0;
  bool in_iteration_ = false;
  bool capture_active_ = false;
  bool replay_active_ = false;
  uint64_t loop_entry_op_ = 0;
  uint64_t iter_index_ = 0;
  std::vector<Entry> prev_;
  std::vector<Entry> cur_;
  std::vector<Entry> tmpl_;
  bool have_prev_ = false;
  bool have_tmpl_ = false;
  uint64_t tmpl_forest_sig_ = 0;
  size_t replay_idx_ = 0;
  // Every recorded op's completion event, for resolving replayed
  // precondition references (ids are unique per execution).
  std::unordered_map<uint64_t, sim::Event, support::U64Hash> completion_of_;
  std::vector<rt::DependenceTracker::Capture::Prune> prune_scratch_;

  uint64_t captures_ = 0;
  uint64_t replays_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t pairs_skipped_ = 0;
};

}  // namespace cr::exec
