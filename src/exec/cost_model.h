// The cost model: every calibration constant of the simulated machine's
// control plane in one place.
//
// These constants are the substitution for the Piz Daint testbed (see
// DESIGN.md §2): weak-scaling shapes are determined by the ratio of
// control-plane costs to task granularity and by the network parameters,
// all of which are explicit here and documented in EXPERIMENTS.md. The
// defaults are calibrated against the magnitudes reported for Legion:
// dynamic dependence analysis and mapping costs of tens of microseconds
// per task on the issuing control thread.
#pragma once

#include <cstdint>

#include "sim/network.h"

namespace cr::exec {

struct CostModel {
  // --- control-plane costs (ns), charged to the issuing control thread.
  // A single implicit-mode master pays this for every point task in the
  // machine; a shard pays shard_launch_ns only for the tasks it owns.
  double implicit_launch_ns = 40000;  // dyn. dependence analysis + mapping
                                      // + remote dispatch per point task
  double shard_launch_ns = 12000;     // shard-local analysis + local spawn
  double dep_pair_ns = 120;           // per dependence pair tested (master)
  double copy_issue_ns = 6000;        // per copy issued
  double fill_issue_ns = 2000;        // per fill issued
  double collective_issue_ns = 3000;  // per collective joined
  double scalar_op_ns = 800;          // deferred scalar arithmetic
  double single_task_issue_ns = 20000;
  double loop_overhead_ns = 1000;     // per sequential-loop iteration

  // --- dynamic intersections (paper §3.3 / Table 1).
  double isect_shallow_per_interval_ns = 220;  // build + query, one node
  double isect_complete_per_interval_ns = 45;  // exact sets, per shard

  // --- network (forwarded into sim::Network).
  sim::NetworkConfig network;

  // (Cores reserved for the runtime moved to rt::MapperOptions — the
  // mapper owns every placement decision; see ExecConfig::mapper.)

  // Deterministic pseudo-random compute-time noise per point task
  // (fraction of the nominal duration). Models OS/system variability:
  // bulk-synchronous baselines amplify it through their barriers and
  // blocking collectives, while deferred execution absorbs it — the
  // §5.3 asynchrony effect.
  double task_jitter_pct = 0.0;
  // Heavy-tailed variant: with probability task_slow_prob a point task
  // runs (1 + task_slow_frac) times longer.
  double task_slow_prob = 0.0;
  double task_slow_frac = 0.0;

  // Maximum operations a control thread may have in flight before its
  // next issue stalls (Legion's bounded pipeline / maximum window size).
  // 0 = unlimited run-ahead.
  uint64_t run_ahead_window = 0;

  // Run the real dynamic dependence analysis in implicit mode (exact
  // pairs-tested accounting). The naive user lists are quadratic in
  // machine size, so large virtual-only sweeps disable this and rely on
  // the analytic per-launch charge instead.
  bool track_dependences = true;

  // Defaults shaped after the evaluation platform (Cray XC50).
  static CostModel piz_daint();
};

}  // namespace cr::exec
