// Metric regression gate: compares two BENCH_metrics JSON documents
// (written by bench --metrics, see bench/common.h) and flags any gated
// metric that grew past its relative threshold. Every gated quantity is
// a cost (virtual makespan, bytes moved, messages, events processed),
// so "higher than baseline" is always the regression direction.
//
// The comparison is structural: series are matched by name and points by
// node count; a series or point present in the baseline but missing from
// the current run is an error (a silently dropped configuration must not
// read as "no regressions").
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cr::exec {

struct DiffOptions {
  // Relative threshold (percent) for the makespan_ns of every point.
  double makespan_pct = 5.0;
  // When >= 0, every metric in the point's snapshot is gated at this
  // threshold; when < 0 only makespan_ns and metric_pct entries gate.
  // Metrics with a "host." or "info." prefix are never covered by
  // all_pct (see host_pct below).
  double all_pct = -1;
  // Host-time gate: metrics whose key starts with "host." are measured
  // wall-clock quantities (seconds, slowdown ratios) from
  // tools/parallel_speedup — real but noisy, so they get their own
  // threshold, typically much looser than the virtual-time gates. < 0
  // (the default) leaves them ungated. "info."-prefixed keys (rates,
  // rep counts) are never gated: they are context, not costs.
  double host_pct = -1;
  // Per-metric threshold overrides, by exact registry key.
  std::map<std::string, double> metric_pct;
  // Absolute fallback for zero baselines. A relative threshold is
  // meaningless when base == 0 (base * (1 + pct/100) stays 0, so any
  // positive current value — however tiny — would flag). Instead a
  // zero-baseline metric regresses only when cur > zero_abs_eps.
  double zero_abs_eps = 1e-9;
};

struct DiffResult {
  std::vector<std::string> lines;        // informational comparisons
  std::vector<std::string> regressions;  // gated metrics over threshold
  std::vector<std::string> errors;       // parse / structure problems
  bool ok() const { return regressions.empty() && errors.empty(); }
  // Full human-readable report (lines, then regressions and errors).
  std::string to_text() const;
};

// Compare two documents given as JSON text.
DiffResult bench_diff(const std::string& baseline_json,
                      const std::string& current_json,
                      const DiffOptions& options);

// Convenience: read both files, then compare. Unreadable files become
// errors in the result.
DiffResult bench_diff_files(const std::string& baseline_path,
                            const std::string& current_path,
                            const DiffOptions& options);

}  // namespace cr::exec
