// One configuration object for the whole prepare-and-execute path.
//
// Historically callers threaded passes::PipelineOptions into prepare_*,
// a CostModel plus ExecMode into the Engine constructor, and flipped
// instrumentation (tracing, the race checker) through separate calls.
// ExecConfig collapses that plumbing: build one struct, hand it to
// prepare() (see implicit_exec.h) or to the Engine directly.
#pragma once

#include "exec/cost_model.h"
#include "ir/program.h"
#include "passes/pipeline.h"
#include "rt/mapper.h"

namespace cr::exec {

enum class ExecMode { kImplicit, kSpmd };

struct ExecConfig {
  // How the source program is transformed before execution
  // (control_replicate for kSpmd, prepare_distributed for kImplicit).
  // pipeline.num_shards == 0 defaults to one shard per node.
  passes::PipelineOptions pipeline;
  CostModel cost;
  ExecMode mode = ExecMode::kSpmd;

  // Placement policy: a rt::MapperRegistry name ("default", "balanced",
  // "adversarial", "random") plus its knobs (seed, reserved cores). The
  // Engine installs the selected mapper on the Runtime at construction;
  // this field is the only way to configure placement (one-struct rule).
  rt::MapperOptions mapper;

  // Simulation backend: 0 = the sequential reference event loop; N >= 1
  // = the windowed multi-worker backend with N host threads (SPMD mode
  // only). Any N — including 1 — produces bit-identical virtual-time
  // results, metrics and traces; see DESIGN.md "Deterministic
  // multi-worker backend".
  uint32_t workers = 0;

  // Window policy for the multi-worker backend: true (default) = adaptive
  // per-lane lookahead horizons; false = the global-window reference
  // policy (PR 5 behavior), kept for equivalence testing. Both produce
  // bit-identical virtual timelines; adaptive runs far fewer windows.
  bool adaptive_window = true;

  // Boundary elision for the multi-worker backend (backend v3, adaptive
  // policy only): fuse runs of windows whose boundaries provably have
  // no serial work into one barrier cycle, rolling lanes between
  // pre-planned horizons through a cheap symmetric rendezvous. True
  // (default) = elide; false = the full-boundary reference protocol,
  // kept for equivalence testing. Bit-identical virtual timelines
  // either way; only host-side boundary cost and the window-shape
  // gauges (sim.windows, sim.windows_elided, sim.queue.max_depth)
  // differ.
  bool elide_boundaries = true;

  // Pin the backend's host threads to distinct physical cores (probed
  // via support/topology.h; no-op where unsupported). Host-side only:
  // never affects virtual time.
  bool pin_workers = false;

  // Steady-state launch-stream trace capture & replay (see
  // exec/trace_replay.h). Only engages under kImplicit with
  // cost.track_dependences — elsewhere it is a structural no-op. Replay
  // is neutral by contract: virtual times, metrics that feed the
  // timeline, traces, and race-checker verdicts stay bit-identical to
  // fully analyzed runs; only host-side analysis counters
  // (pairs_tested, index/alias/overlap queries) drop.
  bool trace_replay = false;
  // Testing knob: with trace_replay on, force-drop the installed
  // template every N loop iterations (0 = never), exercising the
  // invalidation → re-capture → re-replay path mid-run.
  uint64_t replay_invalidate_every = 0;

  // Instrumentation sinks. All host-side: enabling any of them leaves
  // the virtual timeline bit-identical (asserted by the
  // analysis-neutrality tests).
  bool trace = false;  // record the timeline (Engine::write_trace)
  bool check = false;  // record accesses + HB graph, run the race checker
  // Host-phase profiler for the windowed backend (workers >= 1 only):
  // per-worker per-window wall-clock spans, aggregated on
  // ExecutionResult::host_profile (never into the bit-stable metrics
  // snapshot — these are wall-clock quantities). See support/host_clock.h.
  bool host_profile = false;
  // Stall watchdog budget for the windowed backend: abort with a
  // flight-recorder dump if no execution progress for this many wall
  // milliseconds (0 = disabled). See Simulator::WatchdogOptions.
  uint64_t watchdog_ms = 0;
  // Fault injection for the checker: delete/weaken the sync op with this
  // id (see ir::SyncId) — the mutant run must then report a race.
  ir::SyncId check_mutate = ir::kNoSyncId;
};

}  // namespace cr::exec
