#include "exec/sequential_exec.h"

#include "support/check.h"

namespace cr::exec {

namespace {

using Store = SequentialResult;

class SeqContext;

class SequentialExecutorImpl {
 public:
  explicit SequentialExecutorImpl(const ir::Program& program)
      : p_(program), forest_(*program.forest) {}

  SequentialResult run() {
    for (const ir::ScalarDecl& s : p_.scalars) {
      result_.scalars_.push_back(s.init);
    }
    exec_body(p_.body);
    return std::move(result_);
  }

  // --- storage ---------------------------------------------------------

  SequentialResult::Store& store_for(rt::RegionId region) {
    const rt::RegionId root = forest_.region(region).root;
    auto [it, inserted] = result_.stores_.try_emplace(root);
    if (inserted) {
      const rt::RegionNode& node = forest_.region(root);
      it->second.domain = &node.ispace;
      for (const rt::FieldDecl& f : node.fields->fields()) {
        if (f.type == rt::FieldType::kF64) {
          it->second.f64[f.id].assign(node.ispace.size(), 0.0);
        } else {
          it->second.i64[f.id].assign(node.ispace.size(), 0);
        }
      }
    }
    return it->second;
  }

  // --- interpretation --------------------------------------------------

  void exec_body(const std::vector<ir::Stmt>& body) {
    for (const ir::Stmt& s : body) exec_stmt(s);
  }

  void exec_stmt(const ir::Stmt& s) {
    switch (s.kind) {
      case ir::StmtKind::kForTime:
        for (uint64_t t = 0; t < s.trip_count; ++t) exec_body(s.body);
        return;
      case ir::StmtKind::kIndexLaunch:
        exec_launch(s);
        return;
      case ir::StmtKind::kSingleTask:
        exec_single(s);
        return;
      case ir::StmtKind::kScalarOp:
        s.scalar_fn(result_.scalars_, result_.scalars_);
        return;
      default:
        CR_UNREACHABLE("compiler statement in source program");
    }
  }

  void exec_launch(const ir::Stmt& s);
  void exec_single(const ir::Stmt& s);

  const ir::Program& p_;
  const rt::RegionForest& forest_;
  SequentialResult result_;
  // Scalar reduction accumulator for the launch currently executing.
  double* red_acc_ = nullptr;
  rt::ReduceOp red_op_ = rt::ReduceOp::kSum;
};

// Task context bound to master stores.
class SeqContext final : public ir::TaskContext {
 public:
  SeqContext(SequentialExecutorImpl& exec, const ir::TaskDecl& decl)
      : exec_(exec), decl_(decl) {}

  std::vector<SequentialResult::Store*> stores;
  std::vector<const rt::IndexSpace*> domains;  // per param
  const rt::IndexSpace* launch_domain = nullptr;

  const rt::IndexSpace& domain() const override { return *launch_domain; }
  const rt::IndexSpace& param_domain(size_t k) const override {
    return *domains[k];
  }

  double read_f64(size_t k, rt::FieldId f, uint64_t pt) const override {
    check_read(k);
    return stores[k]->f64.at(f)[rank(k, pt)];
  }
  void write_f64(size_t k, rt::FieldId f, uint64_t pt, double v) override {
    check_write(k);
    stores[k]->f64.at(f)[rank(k, pt)] = v;
  }
  int64_t read_i64(size_t k, rt::FieldId f, uint64_t pt) const override {
    check_read(k);
    return stores[k]->i64.at(f)[rank(k, pt)];
  }
  void write_i64(size_t k, rt::FieldId f, uint64_t pt, int64_t v) override {
    check_write(k);
    stores[k]->i64.at(f)[rank(k, pt)] = v;
  }
  void reduce_f64(size_t k, rt::FieldId f, uint64_t pt, double v) override {
    CR_DCHECK(decl_.params[k].privilege == rt::Privilege::kReduce);
    auto& col = stores[k]->f64.at(f);
    const uint64_t r = rank(k, pt);
    col[r] = rt::reduce_fold(decl_.params[k].redop, col[r], v);
  }
  double scalar(ir::ScalarId s) const override {
    return exec_.result_.scalars_[s];
  }
  void reduce_scalar(double v) override {
    CR_CHECK_MSG(exec_.red_acc_ != nullptr,
                 "reduce_scalar outside a scalar-reduction launch");
    *exec_.red_acc_ = rt::reduce_fold(exec_.red_op_, *exec_.red_acc_, v);
  }

 private:
  uint64_t rank(size_t k, uint64_t pt) const {
    // Master stores index by the root region's rank.
    return stores[k]->domain->rank(pt);
  }
  void check_read([[maybe_unused]] size_t k) const {
    CR_DCHECK(rt::privilege_reads(decl_.params[k].privilege));
  }
  void check_write([[maybe_unused]] size_t k) const {
    CR_DCHECK(rt::privilege_writes(decl_.params[k].privilege));
  }

  SequentialExecutorImpl& exec_;
  const ir::TaskDecl& decl_;
};

void SequentialExecutorImpl::exec_launch(const ir::Stmt& s) {
  const ir::TaskDecl& decl = p_.task(s.task);
  CR_CHECK_MSG(decl.kernel, "sequential execution requires kernels");

  double acc = 0;
  if (s.scalar_red) {
    acc = rt::reduce_identity(s.scalar_red->op);
    red_acc_ = &acc;
    red_op_ = s.scalar_red->op;
  }
  for (uint64_t i = 0; i < s.launch_colors; ++i) {
    SeqContext ctx(*this, decl);
    for (const ir::RegionArg& a : s.args) {
      const uint64_t color = a.proj(i);
      const rt::RegionId sub = forest_.subregion(a.partition, color);
      ctx.stores.push_back(&store_for(sub));
      ctx.domains.push_back(&forest_.region(sub).ispace);
    }
    ctx.launch_domain = ctx.domains[decl.domain_param];
    decl.kernel(ctx);
  }
  if (s.scalar_red) {
    red_acc_ = nullptr;
    result_.scalars_[s.scalar_red->target] = acc;
  }
}

void SequentialExecutorImpl::exec_single(const ir::Stmt& s) {
  const ir::TaskDecl& decl = p_.task(s.task);
  CR_CHECK_MSG(decl.kernel, "sequential execution requires kernels");
  SeqContext ctx(*this, decl);
  for (rt::RegionId r : s.regions) {
    ctx.stores.push_back(&store_for(r));
    ctx.domains.push_back(&forest_.region(r).ispace);
  }
  ctx.launch_domain = ctx.domains[decl.domain_param];
  decl.kernel(ctx);
}

}  // namespace

double SequentialResult::read_f64(rt::RegionId root, rt::FieldId f,
                                  uint64_t point) const {
  const Store& s = stores_.at(root);
  return s.f64.at(f)[s.domain->rank(point)];
}

int64_t SequentialResult::read_i64(rt::RegionId root, rt::FieldId f,
                                   uint64_t point) const {
  const Store& s = stores_.at(root);
  return s.i64.at(f)[s.domain->rank(point)];
}

double SequentialResult::scalar(ir::ScalarId id) const {
  return scalars_.at(id);
}

SequentialResult run_sequential(const ir::Program& program) {
  SequentialExecutorImpl impl(program);
  return impl.run();
}

}  // namespace cr::exec
