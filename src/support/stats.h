// Named counters and accumulators, used by the runtime to report
// analysis work (tasks launched, copies issued, bytes moved, dependence
// pairs tested) and by the benches to print table rows.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace cr::support {

class Stats {
 public:
  void add(const std::string& name, double amount = 1.0);
  void set_max(const std::string& name, double value);
  double get(const std::string& name) const;  // 0 if absent
  bool has(const std::string& name) const;
  void clear();

  const std::map<std::string, double>& all() const { return values_; }
  std::string to_string() const;

 private:
  std::map<std::string, double> values_;
};

}  // namespace cr::support
