// Contract-checking macros used throughout the library.
//
// CR_CHECK is always on (it guards invariants whose violation would make
// results silently wrong); CR_DCHECK compiles out in NDEBUG builds and is
// used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cr::support {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace cr::support

#define CR_CHECK(cond)                                                \
  do {                                                                \
    if (!(cond)) ::cr::support::check_failed(#cond, __FILE__, __LINE__, nullptr); \
  } while (0)

#define CR_CHECK_MSG(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) ::cr::support::check_failed(#cond, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define CR_DCHECK(cond) \
  do {                  \
  } while (0)
#else
#define CR_DCHECK(cond) CR_CHECK(cond)
#endif

#define CR_UNREACHABLE(msg) \
  ::cr::support::check_failed("unreachable", __FILE__, __LINE__, msg)
