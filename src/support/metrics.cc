#include "support/metrics.h"

#include <bit>
#include <sstream>

#include "support/check.h"

namespace cr::support {

size_t Histogram::bucket_of(uint64_t v) {
  return v == 0 ? 0 : static_cast<size_t>(std::bit_width(v));
}

uint64_t Histogram::bucket_lo(size_t b) {
  CR_CHECK(b < kBuckets);
  return b == 0 ? 0 : uint64_t{1} << (b - 1);
}

uint64_t Histogram::bucket_hi(size_t b) {
  CR_CHECK(b < kBuckets);
  if (b == 0) return 0;
  if (b == 64) return UINT64_MAX;
  return (uint64_t{1} << b) - 1;
}

void Histogram::record(uint64_t v) {
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

void Histogram::reset() {
  for (uint64_t& b : buckets_) b = 0;
  count_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  CR_CHECK_MSG(!gauges_.count(name) && !histograms_.count(name),
               "metric name registered as a different kind");
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  CR_CHECK_MSG(!counters_.count(name) && !histograms_.count(name),
               "metric name registered as a different kind");
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  CR_CHECK_MSG(!counters_.count(name) && !gauges_.count(name),
               "metric name registered as a different kind");
  return histograms_[name];
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::map<std::string, double> MetricsRegistry::snapshot() const {
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) {
    out[name] = static_cast<double>(c.value());
  }
  for (const auto& [name, g] : gauges_) out[name] = g.value();
  for (const auto& [name, h] : histograms_) {
    out[name + ".count"] = static_cast<double>(h.count());
    out[name + ".sum"] = static_cast<double>(h.sum());
    out[name + ".min"] = static_cast<double>(h.min());
    out[name + ".max"] = static_cast<double>(h.max());
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [name, value] : snapshot()) {
    if (!first) os << ",";
    first = false;
    // Counter-derived values are integral; print them without a
    // fractional part so snapshots stay stable across libc printf quirks.
    os << "\"" << name << "\":";
    if (value == static_cast<double>(static_cast<int64_t>(value))) {
      os << static_cast<int64_t>(value);
    } else {
      os << value;
    }
  }
  os << "}";
  return os.str();
}

}  // namespace cr::support
