// Minimal leveled logger. Not thread-safe by design: the DES is
// single-threaded and logging from real-threaded test code should go
// through gtest instead.
#pragma once

#include <sstream>
#include <string>

namespace cr::support {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace cr::support

#define CR_LOG(level)                                                     \
  if (::cr::support::LogLevel::level < ::cr::support::log_threshold()) {} \
  else ::cr::support::detail::LogLine(::cr::support::LogLevel::level)
