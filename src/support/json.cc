#include "support/json.h"

#include <cctype>
#include <cstdlib>

namespace cr::support {

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.b = true;
        return literal("true", 4);
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.b = false;
        return literal("false", 5);
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null", 4);
      default:
        return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      JsonValue member;
      if (!value(member)) return false;
      out.obj.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(element)) return false;
      out.arr.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Our writers never emit \u escapes; decode the BMP code point
          // as a raw byte when it fits, '?' otherwise.
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const long cp = std::strtol(hex.c_str(), nullptr, 16);
          out.push_back(cp > 0 && cp < 128 ? static_cast<char>(cp) : '?');
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    out.kind = JsonValue::Kind::kNumber;
    out.num = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    return true;
  }

  const std::string& text_;
  std::string& error_;
  size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue& out, std::string& error) {
  Parser p(text, error);
  return p.parse(out);
}

}  // namespace cr::support
