#include "support/json.h"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace cr::support {

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& error)
      : text_(text), error_(error) {}

  bool parse(JsonValue& out) {
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    error_ = what + " at offset " + std::to_string(pos_);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word, size_t len) {
    if (text_.compare(pos_, len, word) != 0) return fail("bad literal");
    pos_ += len;
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return object(out);
      case '[':
        return array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.b = true;
        return literal("true", 4);
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.b = false;
        return literal("false", 5);
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null", 4);
      default:
        return number(out);
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      JsonValue member;
      if (!value(member)) return false;
      out.obj.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!value(element)) return false;
      out.arr.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool hex4(uint32_t& out) {
    if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
    out = 0;
    for (int k = 0; k < 4; ++k) {
      const char h = text_[pos_ + k];
      uint32_t d;
      if (h >= '0' && h <= '9') {
        d = static_cast<uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        d = static_cast<uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        d = static_cast<uint32_t>(h - 'A' + 10);
      } else {
        return fail("bad \\u escape");
      }
      out = (out << 4) | d;
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low half must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t lo = 0;
            if (!hex4(lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(cp, out);
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const size_t start = pos_;
    // JSON allows a leading '-' only ('+' is not a valid first char).
    if (pos_ < text_.size() && !std::isdigit(static_cast<unsigned char>(
                                   text_[pos_])) &&
        text_[pos_] != '-') {
      return fail("expected value");
    }
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      if (!std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        integral = false;
      }
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token = text_.substr(start, pos_ - start);
    if (token == "-") return fail("bad number");
    out.kind = JsonValue::Kind::kNumber;
    // Integral tokens keep an exact 64-bit payload when they fit: a
    // double rounds u64 counters at 2^53 and above, which would corrupt
    // large metric values (bytes moved, virtual-time sums) on re-read.
    if (integral) {
      char* end = nullptr;
      errno = 0;
      if (token[0] == '-') {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (end != nullptr && *end == '\0' && errno != ERANGE) {
          out.has_i64 = true;
          out.i64 = v;
          out.num = static_cast<double>(v);
          return true;
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (end != nullptr && *end == '\0' && errno != ERANGE) {
          out.has_u64 = true;
          out.u64 = v;
          if (v <= static_cast<uint64_t>(INT64_MAX)) {
            out.has_i64 = true;
            out.i64 = static_cast<int64_t>(v);
          }
          out.num = static_cast<double>(v);
          return true;
        }
      }
      // Out of 64-bit range: fall back to the double path below.
    }
    char* end = nullptr;
    out.num = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    return true;
  }

  const std::string& text_;
  std::string& error_;
  size_t pos_ = 0;
};

}  // namespace

bool json_parse(const std::string& text, JsonValue& out, std::string& error) {
  Parser p(text, error);
  return p.parse(out);
}

}  // namespace cr::support
