#include "support/rng.h"

#include "support/check.h"

namespace cr::support {

namespace {
uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  CR_CHECK(bound != 0);
  // Rejection sampling over the largest multiple of bound <= 2^64.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::next_in(int64_t lo, int64_t hi) {
  CR_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(next_u64());  // full range
  return lo + static_cast<int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

Rng Rng::split(uint64_t stream) const {
  uint64_t x = s_[0] ^ rotl(s_[3], 13) ^ (stream * 0xd1342543de82ef95ull);
  Rng out(0);
  for (auto& s : out.s_) s = splitmix64(x);
  return out;
}

}  // namespace cr::support
