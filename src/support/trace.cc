#include "support/trace.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <map>
#include <sstream>
#include <unordered_set>

#include "support/check.h"
#include "support/interval_set.h"

namespace cr::support {

namespace {
// The lane this thread records into; -1 = direct. Process-wide: only
// one Tracer is ever in sharded mode at a time (the active simulator's).
thread_local int32_t tls_trace_lane = -1;
}  // namespace

const char* trace_category_name(TraceCategory c) {
  switch (c) {
    case TraceCategory::kCompute:
      return "compute";
    case TraceCategory::kCopy:
      return "copy";
    case TraceCategory::kSync:
      return "sync";
  }
  return "?";
}

Tracer::LaneBuffer* Tracer::lane() {
  if (!sharded_ || tls_trace_lane < 0) return nullptr;
  CR_DCHECK(static_cast<size_t>(tls_trace_lane) < lanes_.size());
  return &lanes_[static_cast<size_t>(tls_trace_lane)];
}

void Tracer::set_thread_lane(int32_t lane) { tls_trace_lane = lane; }

void Tracer::begin_sharded(uint32_t lanes) {
  CR_CHECK_MSG(!sharded_, "begin_sharded() while already sharded");
  CR_CHECK(lanes > 0);
  lanes_ = std::vector<LaneBuffer>(lanes);
  sharded_ = true;
}

void Tracer::end_sharded() {
  CR_CHECK_MSG(sharded_, "end_sharded() without begin_sharded()");
  sharded_ = false;
  // Lane-local span indices become global ids at per-lane bases; lanes
  // merge in index order, so the result only depends on lane contents.
  std::vector<SpanId> base(lanes_.size());
  SpanId next = static_cast<SpanId>(spans_.size());
  for (size_t i = 0; i < lanes_.size(); ++i) {
    base[i] = next;
    next += static_cast<SpanId>(lanes_[i].spans.size());
  }
  for (size_t i = 0; i < lanes_.size(); ++i) {
    LaneBuffer& lb = lanes_[i];
    for (TraceSpan& s : lb.spans) {
      tracks_.try_emplace({s.pid, s.tid}, TrackInfo{"", s.pid != kRuntimePid});
      spans_.push_back(std::move(s));
    }
    for (TraceInstant& in : lb.instants) instants_.push_back(std::move(in));
    for (LaneDecl& d : lb.tracks) {
      declare_track(d.pid, d.tid, std::move(d.name), d.hardware);
    }
    for (auto& [pid, name] : lb.process_names) {
      process_names_[pid] = std::move(name);
    }
    for (const auto& [uid, local] : lb.binds) {
      producer_[uid] = base[i] + local;
    }
    for (const auto& [derived, original] : lb.aliases) {
      aliases_.emplace(derived, original);
    }
    for (const auto& [uid, local] : lb.edges) {
      edges_.emplace_back(uid, base[i] + local);
    }
    for (auto& [uid, attr] : lb.attrs) {
      attr_uids_.emplace(uid, attr.first);
      attr_labels_.emplace(attr.first, std::move(attr.second));
    }
  }
  lanes_.clear();
}

SpanId Tracer::add_span(uint32_t pid, uint32_t tid, TraceCategory category,
                        std::string name, TraceTime start, TraceTime end) {
  CR_DCHECK(start <= end);
  if (LaneBuffer* lb = lane()) {
    const SpanId local = static_cast<SpanId>(lb->spans.size());
    lb->spans.push_back({pid, tid, category, start, end, std::move(name)});
    return local;
  }
  const SpanId id = static_cast<SpanId>(spans_.size());
  spans_.push_back({pid, tid, category, start, end, std::move(name)});
  tracks_.try_emplace({pid, tid}, TrackInfo{"", pid != kRuntimePid});
  return id;
}

void Tracer::add_instant(uint32_t pid, uint32_t tid, std::string name,
                         TraceTime time) {
  if (LaneBuffer* lb = lane()) {
    lb->instants.push_back({pid, tid, time, std::move(name)});
    return;
  }
  instants_.push_back({pid, tid, time, std::move(name)});
}

void Tracer::declare_track(uint32_t pid, uint32_t tid, std::string name,
                           bool hardware) {
  if (LaneBuffer* lb = lane()) {
    lb->tracks.push_back({pid, tid, std::move(name), hardware});
    return;
  }
  TrackInfo& info = tracks_[{pid, tid}];
  info.name = std::move(name);
  info.hardware = hardware && pid != kRuntimePid;
}

void Tracer::set_process_name(uint32_t pid, std::string name) {
  if (LaneBuffer* lb = lane()) {
    lb->process_names.emplace_back(pid, std::move(name));
    return;
  }
  process_names_[pid] = std::move(name);
}

void Tracer::bind(uint64_t uid, SpanId span) {
  if (uid == 0 || span == kNoSpan) return;
  if (LaneBuffer* lb = lane()) {
    lb->binds.emplace_back(uid, span);
    return;
  }
  producer_[uid] = span;
}

void Tracer::alias(uint64_t derived, uint64_t original) {
  if (derived == 0 || original == 0 || derived == original) return;
  if (LaneBuffer* lb = lane()) {
    lb->aliases.emplace_back(derived, original);
    return;
  }
  aliases_.emplace(derived, original);
}

void Tracer::edge(uint64_t uid, SpanId to) {
  if (uid == 0 || to == kNoSpan) return;
  if (LaneBuffer* lb = lane()) {
    lb->edges.emplace_back(uid, to);
    return;
  }
  edges_.emplace_back(uid, to);
}

void Tracer::attribute(uint64_t uid, uint32_t source,
                       const std::string& label) {
  if (uid == 0) return;
  if (LaneBuffer* lb = lane()) {
    lb->attrs.emplace_back(uid, std::make_pair(source, label));
    return;
  }
  attr_uids_.emplace(uid, source);
  attr_labels_.emplace(source, label);
}

uint64_t Tracer::resolve_alias(uint64_t uid) const {
  // Follow the alias chain until a bound producer or a fixed point; the
  // hop bound guards against accidental cycles.
  for (int hops = 0; hops < 64; ++hops) {
    if (producer_.count(uid)) return uid;
    auto it = aliases_.find(uid);
    if (it == aliases_.end()) return uid;
    uid = it->second;
  }
  return uid;
}

SpanId Tracer::producer_of(uint64_t uid) const {
  auto it = producer_.find(resolve_alias(uid));
  return it == producer_.end() ? kNoSpan : it->second;
}

std::unordered_map<SpanId, uint32_t> Tracer::span_sources() const {
  // Visit attributed uids in sorted order so the first-wins claim of a
  // span (several uids can resolve to one span through alias chains) is
  // deterministic across identical runs.
  std::vector<std::pair<uint64_t, uint32_t>> pairs(attr_uids_.begin(),
                                                   attr_uids_.end());
  std::sort(pairs.begin(), pairs.end());
  std::unordered_map<SpanId, uint32_t> out;
  for (const auto& [uid, source] : pairs) {
    const SpanId span = producer_of(uid);
    if (span != kNoSpan) out.emplace(span, source);
  }
  return out;
}

std::vector<TraceAttributionRow> Tracer::attribution() const {
  std::map<uint32_t, TraceAttributionRow> by_source;
  for (const auto& [span, source] : span_sources()) {
    const TraceSpan& s = spans_[span];
    TraceAttributionRow& row = by_source[source];
    row.source = source;
    const auto label = attr_labels_.find(source);
    if (label != attr_labels_.end()) row.label = label->second;
    const double dur = static_cast<double>(s.duration());
    if (s.category == TraceCategory::kSync) {
      row.sync_ns += dur;
    } else {
      row.copy_ns += dur;  // copy (and any compute issued on its behalf)
    }
    ++row.spans;
  }
  std::vector<TraceAttributionRow> rows;
  rows.reserve(by_source.size());
  for (auto& [source, row] : by_source) rows.push_back(std::move(row));
  std::sort(rows.begin(), rows.end(),
            [](const TraceAttributionRow& a, const TraceAttributionRow& b) {
              return a.total_ns() != b.total_ns()
                         ? a.total_ns() > b.total_ns()
                         : a.source < b.source;
            });
  return rows;
}

// ---------------------------------------------------------------------
// Chrome trace_event JSON
// ---------------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double to_us(TraceTime t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

void Tracer::write_chrome_json(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  CR_CHECK_MSG(f != nullptr, "cannot open trace file for writing");
  std::fprintf(f, "[\n");
  bool first = true;
  auto sep = [&] {
    if (!first) std::fprintf(f, ",\n");
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    std::fprintf(f,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                 "\"args\":{\"name\":\"%s\"}}",
                 pid, json_escape(name).c_str());
  }
  for (const auto& [key, info] : tracks_) {
    if (info.name.empty()) continue;
    sep();
    std::fprintf(f,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                 "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                 key.pid, key.tid, json_escape(info.name).c_str());
  }
  const std::unordered_map<SpanId, uint32_t> sources = span_sources();
  for (SpanId i = 0; i < spans_.size(); ++i) {
    const TraceSpan& s = spans_[i];
    sep();
    std::fprintf(f,
                 "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                 "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u",
                 json_escape(s.name).c_str(),
                 trace_category_name(s.category), to_us(s.start),
                 to_us(s.duration()), s.pid, s.tid);
    const auto src = sources.find(i);
    if (src != sources.end()) {
      std::fprintf(f, ",\"args\":{\"src\":%u}", src->second);
    }
    std::fprintf(f, "}");
  }
  for (const TraceInstant& i : instants_) {
    sep();
    std::fprintf(f,
                 "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                 "\"pid\":%u,\"tid\":%u}",
                 json_escape(i.name).c_str(), to_us(i.time), i.pid, i.tid);
  }
  std::fprintf(f, "\n]\n");
  std::fclose(f);
}

// ---------------------------------------------------------------------
// Summary: category breakdown + critical path
// ---------------------------------------------------------------------

TraceSummary Tracer::summarize(TraceTime makespan) const {
  TraceSummary out;
  out.breakdown.makespan = makespan;
  out.attribution = attribution();

  // --- per-track category coverage (priority compute > copy > sync) ---
  struct Cover {
    IntervalSet compute, copy, sync;
  };
  std::unordered_map<TrackKey, Cover, TrackKeyHash> covers;
  for (const auto& [key, info] : tracks_) {
    if (info.hardware) covers.try_emplace(key);
  }
  for (const TraceSpan& s : spans_) {
    auto it = covers.find({s.pid, s.tid});
    if (it == covers.end()) continue;  // non-hardware (runtime) track
    const TraceTime lo = std::min(s.start, makespan);
    const TraceTime hi = std::min(s.end, makespan);
    if (lo >= hi) continue;
    switch (s.category) {
      case TraceCategory::kCompute:
        it->second.compute.add(lo, hi);
        break;
      case TraceCategory::kCopy:
        it->second.copy.add(lo, hi);
        break;
      case TraceCategory::kSync:
        it->second.sync.add(lo, hi);
        break;
    }
  }
  TraceBreakdown& b = out.breakdown;
  b.tracks = static_cast<uint32_t>(covers.size());
  b.total_ns = static_cast<double>(makespan) * b.tracks;
  for (const auto& [key, c] : covers) {
    const IntervalSet copy_eff = c.copy.set_subtract(c.compute);
    const IntervalSet busy_cc = c.compute.set_union(c.copy);
    const IntervalSet sync_eff = c.sync.set_subtract(busy_cc);
    const uint64_t compute = c.compute.size();
    const uint64_t copy = copy_eff.size();
    const uint64_t sync = sync_eff.size();
    b.compute_ns += static_cast<double>(compute);
    b.copy_ns += static_cast<double>(copy);
    b.sync_ns += static_cast<double>(sync);
    b.idle_ns += static_cast<double>(makespan - compute - copy - sync);
  }

  // --- critical path over the dependence edges ------------------------
  if (spans_.empty()) return out;

  std::vector<std::vector<SpanId>> preds(spans_.size());
  for (const auto& [uid, to] : edges_) {
    const SpanId from = producer_of(uid);
    if (from != kNoSpan && from != to) preds[to].push_back(from);
  }
  // Resource (FIFO) edges: on a serial track, a span that starts exactly
  // when its predecessor ends was gated by the resource.
  {
    std::unordered_map<TrackKey, std::vector<SpanId>, TrackKeyHash> by_track;
    for (SpanId i = 0; i < spans_.size(); ++i) {
      by_track[{spans_[i].pid, spans_[i].tid}].push_back(i);
    }
    for (auto& [key, ids] : by_track) {
      std::sort(ids.begin(), ids.end(), [&](SpanId a, SpanId b) {
        return spans_[a].start != spans_[b].start
                   ? spans_[a].start < spans_[b].start
                   : spans_[a].end < spans_[b].end;
      });
      for (size_t k = 1; k < ids.size(); ++k) {
        if (spans_[ids[k - 1]].end == spans_[ids[k]].start) {
          preds[ids[k]].push_back(ids[k - 1]);
        }
      }
    }
  }

  // Start at the span that finishes last; walk backward, always via the
  // latest-finishing predecessor (the binding constraint).
  SpanId cur = 0;
  for (SpanId i = 1; i < spans_.size(); ++i) {
    if (spans_[i].end > spans_[cur].end ||
        (spans_[i].end == spans_[cur].end &&
         spans_[i].duration() > spans_[cur].duration())) {
      cur = i;
    }
  }
  std::map<std::string, double> by_name;
  std::unordered_set<SpanId> visited;
  while (cur != kNoSpan && visited.insert(cur).second) {
    const TraceSpan& s = spans_[cur];
    ++out.cp_spans;
    const double dur = static_cast<double>(s.duration());
    switch (s.category) {
      case TraceCategory::kCompute:
        out.cp_compute_ns += dur;
        break;
      case TraceCategory::kCopy:
        out.cp_copy_ns += dur;
        break;
      case TraceCategory::kSync:
        out.cp_sync_ns += dur;
        break;
    }
    by_name[s.name.substr(0, s.name.find('['))] += dur;

    SpanId best = kNoSpan;
    for (SpanId p : preds[cur]) {
      if (visited.count(p)) continue;
      if (best == kNoSpan || spans_[p].end > spans_[best].end) best = p;
    }
    if (best == kNoSpan) {
      out.cp_wait_ns += static_cast<double>(s.start);  // gap from t=0
    } else {
      const TraceTime pe = spans_[best].end;
      out.cp_wait_ns += s.start > pe ? static_cast<double>(s.start - pe) : 0;
    }
    cur = best;
  }
  out.cp_top.assign(by_name.begin(), by_name.end());
  std::sort(out.cp_top.begin(), out.cp_top.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.cp_top.size() > 8) out.cp_top.resize(8);
  return out;
}

std::string TraceSummary::to_text() const {
  const TraceBreakdown& b = breakdown;
  std::ostringstream os;
  auto ms = [](double ns) { return ns / 1e6; };
  os << std::fixed;
  os << "=== trace summary ===\n";
  os << std::setprecision(3) << "makespan: " << ms(double(b.makespan))
     << " ms over " << b.tracks << " hardware tracks ("
     << ms(b.total_ns) << " track-ms of machine time)\n";
  os << "category breakdown (machine time):\n";
  auto row = [&](const char* name, double ns, double f) {
    os << "  " << std::left << std::setw(8) << name << std::right
       << std::setw(12) << std::setprecision(3) << ms(ns) << " ms  "
       << std::setw(5) << std::setprecision(1) << f * 100 << "%\n";
  };
  row("compute", b.compute_ns, b.compute_frac());
  row("copy", b.copy_ns, b.copy_frac());
  row("sync", b.sync_ns, b.sync_frac());
  row("idle", b.idle_ns, b.idle_frac());
  row("total", b.compute_ns + b.copy_ns + b.sync_ns + b.idle_ns, 1.0);
  const double cp_total =
      cp_compute_ns + cp_copy_ns + cp_sync_ns + cp_wait_ns;
  os << "critical path: " << cp_spans << " spans, "
     << std::setprecision(3) << ms(cp_total) << " ms ("
     << std::setprecision(1)
     << (b.makespan > 0 ? cp_total / double(b.makespan) * 100 : 0)
     << "% of makespan)\n";
  os << "  compute " << std::setprecision(3) << ms(cp_compute_ns)
     << " ms, copy " << ms(cp_copy_ns) << " ms, sync " << ms(cp_sync_ns)
     << " ms, wait/latency " << ms(cp_wait_ns) << " ms\n";
  if (!cp_top.empty()) {
    os << "  top path contributors:\n";
    for (const auto& [name, ns] : cp_top) {
      os << "    " << std::left << std::setw(24)
         << (name.empty() ? "(unnamed)" : name) << std::right
         << std::setw(12) << std::setprecision(3) << ms(ns) << " ms\n";
    }
  }
  if (!attribution.empty()) {
    os << "copy/sync attribution (by source statement):\n";
    size_t shown = 0;
    for (const TraceAttributionRow& r : attribution) {
      if (++shown > 10) break;
      std::ostringstream who;
      who << "#" << r.source << " " << (r.label.empty() ? "?" : r.label);
      os << "  " << std::left << std::setw(24) << who.str() << std::right
         << "  copy " << std::setw(10) << std::setprecision(3)
         << ms(r.copy_ns) << " ms  sync " << std::setw(10) << ms(r.sync_ns)
         << " ms  (" << r.spans << " spans)\n";
    }
  }
  return os.str();
}

}  // namespace cr::support
