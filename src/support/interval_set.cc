#include "support/interval_set.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"

namespace cr::support {

IntervalSet::IntervalSet(std::initializer_list<Interval> ivs) {
  for (const Interval& iv : ivs) add(iv.lo, iv.hi);
}

IntervalSet IntervalSet::range(uint64_t lo, uint64_t hi) {
  IntervalSet out;
  if (lo < hi) out.ivs_.push_back({lo, hi});
  return out;
}

IntervalSet IntervalSet::from_points(std::vector<uint64_t> points) {
  std::sort(points.begin(), points.end());
  IntervalSet out;
  for (uint64_t p : points) {
    // Duplicate check as `p < back().hi`, not `back().hi >= p + 1`:
    // the latter overflows at p == UINT64_MAX and silently dropped the
    // point. (UINT64_MAX itself is unrepresentable in half-open
    // intervals; append_point CHECK-fails on it rather than vanishing.)
    if (!out.ivs_.empty() && p < out.ivs_.back().hi) continue;  // dup
    out.append_point(p);
  }
  return out;
}

IntervalSet IntervalSet::set_union(const IntervalSet& other) const {
  IntervalSet out;
  size_t i = 0, j = 0;
  const auto& a = ivs_;
  const auto& b = other.ivs_;
  while (i < a.size() || j < b.size()) {
    Interval next;
    if (j >= b.size() || (i < a.size() && a[i].lo <= b[j].lo)) {
      next = a[i++];
    } else {
      next = b[j++];
    }
    if (!out.ivs_.empty() && out.ivs_.back().hi >= next.lo) {
      out.ivs_.back().hi = std::max(out.ivs_.back().hi, next.hi);
    } else {
      out.ivs_.push_back(next);
    }
  }
  return out;
}

IntervalSet IntervalSet::set_intersect(const IntervalSet& other) const {
  IntervalSet out;
  size_t i = 0, j = 0;
  const auto& a = ivs_;
  const auto& b = other.ivs_;
  while (i < a.size() && j < b.size()) {
    const uint64_t lo = std::max(a[i].lo, b[j].lo);
    const uint64_t hi = std::min(a[i].hi, b[j].hi);
    if (lo < hi) out.ivs_.push_back({lo, hi});
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

IntervalSet IntervalSet::set_subtract(const IntervalSet& other) const {
  IntervalSet out;
  size_t j = 0;
  const auto& b = other.ivs_;
  for (Interval iv : ivs_) {
    while (j < b.size() && b[j].hi <= iv.lo) ++j;
    uint64_t lo = iv.lo;
    size_t k = j;
    while (k < b.size() && b[k].lo < iv.hi) {
      if (b[k].lo > lo) out.ivs_.push_back({lo, b[k].lo});
      lo = std::max(lo, b[k].hi);
      if (lo >= iv.hi) break;
      ++k;
    }
    if (lo < iv.hi) out.ivs_.push_back({lo, iv.hi});
  }
  return out;
}

bool IntervalSet::contains(uint64_t point) const {
  auto it = std::upper_bound(
      ivs_.begin(), ivs_.end(), point,
      [](uint64_t p, const Interval& iv) { return p < iv.lo; });
  if (it == ivs_.begin()) return false;
  --it;
  return point < it->hi;
}

bool IntervalSet::contains_all(const IntervalSet& other) const {
  return other.set_subtract(*this).empty();
}

bool IntervalSet::overlaps(const IntervalSet& other) const {
  size_t i = 0, j = 0;
  const auto& a = ivs_;
  const auto& b = other.ivs_;
  while (i < a.size() && j < b.size()) {
    if (a[i].hi <= b[j].lo) {
      ++i;
    } else if (b[j].hi <= a[i].lo) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

uint64_t IntervalSet::size() const {
  uint64_t total = 0;
  for (const Interval& iv : ivs_) total += iv.size();
  return total;
}

Interval IntervalSet::bounds() const {
  CR_CHECK(!ivs_.empty());
  return {ivs_.front().lo, ivs_.back().hi};
}

void IntervalSet::check_representable(uint64_t p) {
  CR_CHECK_MSG(p != UINT64_MAX,
               "IntervalSet cannot represent UINT64_MAX as a point");
}

void IntervalSet::add(uint64_t lo, uint64_t hi) {
  if (lo >= hi) return;
  if (ivs_.empty() || lo >= ivs_.back().hi) {
    append(lo, hi);
    return;
  }
  ivs_.push_back({lo, hi});
  normalize();
}

void IntervalSet::append(uint64_t lo, uint64_t hi) {
  if (lo >= hi) return;
  if (!ivs_.empty()) {
    CR_DCHECK(lo >= ivs_.back().lo);
    if (lo <= ivs_.back().hi) {
      ivs_.back().hi = std::max(ivs_.back().hi, hi);
      return;
    }
  }
  ivs_.push_back({lo, hi});
}

void IntervalSet::for_each_point(
    const std::function<void(uint64_t)>& fn) const {
  for (const Interval& iv : ivs_) {
    for (uint64_t p = iv.lo; p < iv.hi; ++p) fn(p);
  }
}

uint64_t IntervalSet::nth_point(uint64_t k) const {
  for (const Interval& iv : ivs_) {
    if (k < iv.size()) return iv.lo + k;
    k -= iv.size();
  }
  CR_UNREACHABLE("nth_point index out of range");
}

std::string IntervalSet::to_string() const {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < ivs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << "[" << ivs_[i].lo << "," << ivs_[i].hi << ")";
  }
  os << "}";
  return os.str();
}

void IntervalSet::normalize() {
  std::sort(ivs_.begin(), ivs_.end(),
            [](const Interval& a, const Interval& b) {
              return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
            });
  std::vector<Interval> merged;
  merged.reserve(ivs_.size());
  for (const Interval& iv : ivs_) {
    if (!merged.empty() && merged.back().hi >= iv.lo) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  ivs_ = std::move(merged);
}

}  // namespace cr::support
