#include "support/stats.h"

#include <algorithm>
#include <sstream>

namespace cr::support {

void Stats::add(const std::string& name, double amount) {
  values_[name] += amount;
}

void Stats::set_max(const std::string& name, double value) {
  auto [it, inserted] = values_.emplace(name, value);
  if (!inserted) it->second = std::max(it->second, value);
}

double Stats::get(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

bool Stats::has(const std::string& name) const {
  return values_.count(name) > 0;
}

void Stats::clear() { values_.clear(); }

std::string Stats::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : values_) {
    os << name << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace cr::support
