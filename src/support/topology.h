// Hardware topology probe for worker placement (hwloc-free).
//
// The windowed backend's workers are symmetric spinners: two workers
// sharing an SMT core (or a window barrier bouncing between packages)
// costs real wall-clock time even though virtual time is unaffected.
// This probe reads the calling process's allowed CPU set
// (sched_getaffinity) and each CPU's core/package identity from
// /sys/devices/system/cpu/cpuN/topology, then plans a pin order that
// spreads workers across distinct physical cores (packed by package)
// before resorting to SMT siblings.
//
// Everything degrades gracefully: on non-Linux hosts, restricted
// containers, or missing /sys entries, probe() returns what it can and
// pinning becomes a no-op rather than an error.
#pragma once

#include <cstdint>
#include <vector>

namespace cr::support {

struct LogicalCpu {
  int cpu = -1;      // OS logical CPU index
  int core = -1;     // physical core id within the package (-1 unknown)
  int package = -1;  // physical package / socket id (-1 unknown)
};

struct CpuTopology {
  std::vector<LogicalCpu> cpus;  // the allowed set, sorted by cpu index

  // Probe the calling process's allowed CPUs. Empty on failure or on
  // platforms without affinity support.
  static CpuTopology probe();

  // A pin order for `n` threads: distinct physical cores first (packed
  // by package so lanes that exchange mailbox traffic share a cache
  // hierarchy), then SMT siblings, cycling when n exceeds the allowed
  // set. Empty when the probe found nothing (callers skip pinning).
  std::vector<int> plan(uint32_t n) const;

  // Count of distinct (package, core) pairs; equals cpus.size() when
  // core ids are unknown.
  uint32_t physical_cores() const;
};

// Pin the calling thread to one CPU. Returns false (and changes
// nothing) when unsupported or rejected by the OS.
bool pin_current_thread(int cpu);

// The calling thread's full allowed CPU set as a list, for restoring
// after a pinned run. Empty on failure.
std::vector<int> current_thread_affinity();

// Restore a previously captured allowed set. No-op on an empty list.
bool set_current_thread_affinity(const std::vector<int>& cpus);

}  // namespace cr::support
