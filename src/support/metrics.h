#pragma once

// MetricsRegistry: one named home for every counter, gauge and histogram
// the system produces — analysis counters (rt/), simulator occupancy
// (sim/), per-pass IR sizes (passes/), executor rollups (exec/) and the
// race checker (check/). Names are hierarchical dot-paths
// ("rt.alias.queries", "passes.sync-insertion.barriers"); the registry
// owns the instruments, hands out stable references, and renders a
// deterministic flat snapshot (sorted by name) so two identical
// simulated runs serialize byte-identically.
//
// All instruments are plain host-side tallies: recording never touches
// virtual time, so metrics-on and metrics-off runs produce bit-identical
// makespans (enforced by test).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cr::support {

class Counter {
 public:
  void add(uint64_t d = 1) { value_ += d; }
  void set(uint64_t v) { value_ = v; }
  uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void set_max(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  double value_ = 0;
};

// Log2-scale histogram over uint64 samples. Bucket 0 holds the value 0;
// bucket b (1 <= b <= 64) holds [2^(b-1), 2^b - 1] (bucket 64's upper
// bound saturates at UINT64_MAX). Fixed bucket count keeps snapshots
// deterministic regardless of the observed range.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  static size_t bucket_of(uint64_t v);
  static uint64_t bucket_lo(size_t b);
  static uint64_t bucket_hi(size_t b);

  void record(uint64_t v);
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ > 0 ? min_ : 0; }
  uint64_t max() const { return max_; }
  const uint64_t* buckets() const { return buckets_; }
  void reset();

 private:
  uint64_t buckets_[kBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  // Lookup-or-create. References stay valid for the registry's lifetime
  // (node-based map storage). Registering one name as two different
  // instrument kinds is a programming error (CHECK-fails).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Zero every registered instrument (the single reset path: benches
  // reset once per repetition, nothing else keeps private tallies).
  void reset();

  // Deterministic flat view: counters and gauges by value; histograms
  // flattened to <name>.count/.sum/.min/.max. Keys sort lexicographically
  // (std::map order), so identical runs snapshot identically.
  std::map<std::string, double> snapshot() const;

  // The snapshot as a flat JSON object with stable key order.
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace cr::support
