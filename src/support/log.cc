#include "support/log.h"

#include <cstdio>

namespace cr::support {

namespace {
LogLevel g_threshold = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold; }
void set_log_threshold(LogLevel level) { g_threshold = level; }

void log_message(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace cr::support
