#include "support/host_clock.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "support/check.h"

namespace cr::support {

uint64_t host_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* host_phase_name(HostPhase p) {
  switch (p) {
    case HostPhase::kPlan: return "plan";
    case HostPhase::kSerialDrain: return "serial_drain";
    case HostPhase::kLaneDrain: return "lane_drain";
    case HostPhase::kOutboxFlush: return "outbox_flush";
    case HostPhase::kBarrierWait: return "barrier_wait";
    case HostPhase::kBarrierWake: return "barrier_wake";
    case HostPhase::kElided: return "elided";
  }
  return "?";
}

void HostProfiler::begin(uint32_t workers) {
  CR_CHECK(!active_);
  CR_CHECK(workers > 0);
  workers_ = workers;
  lanes_.assign(workers, {});
  for (auto& lane : lanes_) lane.reserve(1024);
  end_ns_ = 0;
  active_ = true;
  origin_ns_ = host_now_ns();
}

void HostProfiler::end() {
  CR_CHECK(active_);
  end_ns_ = host_now_ns();
  active_ = false;
}

void HostProfiler::record(uint32_t worker, uint64_t window, HostPhase phase,
                          uint64_t abs_t0, uint64_t abs_t1) {
  // Clamp to the profile origin: a worker's first boundary may have been
  // cut before begin() stamped the origin (thread spawn order).
  const uint64_t t0 = abs_t0 > origin_ns_ ? abs_t0 - origin_ns_ : 0;
  const uint64_t t1 = abs_t1 > origin_ns_ ? abs_t1 - origin_ns_ : 0;
  lanes_[worker].push_back(HostSpan{window, phase, t0, t1});
}

HostProfile HostProfiler::profile() const {
  CR_CHECK_MSG(!active_, "profile() before end()");
  HostProfile out;
  out.workers = workers_;
  out.wall_ns = end_ns_ > origin_ns_ ? end_ns_ - origin_ns_ : 0;
  out.spans = lanes_;
  out.worker_busy_ns.assign(workers_, 0);
  out.worker_recorded_ns.assign(workers_, 0);

  for (uint32_t w = 0; w < workers_; ++w) {
    for (const HostSpan& s : lanes_[w]) {
      out.phase_ns[static_cast<size_t>(s.phase)] +=
          static_cast<double>(s.duration());
      out.worker_recorded_ns[w] += s.duration();
      if (s.phase == HostPhase::kLaneDrain ||
          s.phase == HostPhase::kOutboxFlush) {
        out.worker_busy_ns[w] += s.duration();
      }
    }
  }
  if (workers_ > 0) out.coordinator_recorded_ns = out.worker_recorded_ns[0];

  // Per-window rows from the coordinator timeline. Coordinator spans
  // arrive in time order and each window's group is contiguous:
  // plan [serial_drain] plan [wake] lane_drain outbox_flush
  // [elided lane_drain outbox_flush ...] [wait] — a fused window (with
  // elided boundaries) keeps one row covering all its sub-windows.
  // The final drain iteration (queues empty, no window started) records
  // plan spans under one-past-the-last window index and produces no
  // row: it has no lane_drain.
  if (!lanes_.empty()) {
    std::map<uint64_t, HostWindowRow> rows;
    std::map<uint64_t, uint64_t> parallel_start;  // first lane_drain t0
    for (const HostSpan& s : lanes_[0]) {
      HostWindowRow& r = rows.try_emplace(s.window).first->second;
      if (r.end_ns == 0 && r.start_ns == 0) r.start_ns = s.t0;
      r.window = s.window;
      r.start_ns = std::min(r.start_ns, s.t0);
      r.end_ns = std::max(r.end_ns, s.t1);
      if (s.phase == HostPhase::kLaneDrain) {
        // Parallel segment start: the coordinator enters its first lane
        // block of the window immediately after the release. Later
        // sub-window lane drains must not move it.
        parallel_start.try_emplace(s.window, s.t0);
      }
    }
    for (auto& [win, r] : rows) {
      auto ps = parallel_start.find(win);
      if (ps == parallel_start.end()) continue;  // final drain iteration
      r.parallel_span_ns = r.end_ns - ps->second;
      r.serial_ns = (r.end_ns - r.start_ns) - r.parallel_span_ns;
      out.window_rows.push_back(r);
    }
    for (HostWindowRow& r : out.window_rows) {
      for (uint32_t w = 0; w < workers_; ++w) {
        for (const HostSpan& s : lanes_[w]) {
          if (s.window == r.window && (s.phase == HostPhase::kLaneDrain ||
                                       s.phase == HostPhase::kOutboxFlush)) {
            r.busy_ns += s.duration();
          }
        }
      }
      out.window_span_hist.record(r.parallel_span_ns);
      out.window_busy_hist.record(r.busy_ns);
    }
  }
  out.windows = out.window_rows.size();

  uint64_t parallel_total = 0;
  for (const HostWindowRow& r : out.window_rows) {
    parallel_total += r.parallel_span_ns;
  }
  out.serial_ns =
      out.wall_ns > parallel_total ? out.wall_ns - parallel_total : 0;
  out.serial_fraction =
      out.wall_ns > 0
          ? static_cast<double>(out.serial_ns) / static_cast<double>(out.wall_ns)
          : 0;
  return out;
}

std::map<std::string, double> HostProfile::host_metrics() const {
  std::map<std::string, double> m;
  m["host.profile.wall_ns"] = static_cast<double>(wall_ns);
  m["host.profile.windows"] = static_cast<double>(windows);
  m["host.profile.workers"] = static_cast<double>(workers);
  m["host.profile.serial_ns"] = static_cast<double>(serial_ns);
  m["host.profile.serial_fraction"] = serial_fraction;
  for (size_t p = 0; p < kNumHostPhases; ++p) {
    m["host.phase." + std::string(host_phase_name(
                          static_cast<HostPhase>(p))) + "_ns"] = phase_ns[p];
  }
  double busy_min = 1, busy_max = 0, busy_sum = 0;
  for (uint64_t b : worker_busy_ns) {
    const double f =
        wall_ns > 0 ? static_cast<double>(b) / static_cast<double>(wall_ns)
                    : 0;
    busy_min = std::min(busy_min, f);
    busy_max = std::max(busy_max, f);
    busy_sum += f;
  }
  if (worker_busy_ns.empty()) busy_min = 0;
  m["host.worker.busy_frac_min"] = busy_min;
  m["host.worker.busy_frac_max"] = busy_max;
  m["host.worker.busy_frac_mean"] =
      worker_busy_ns.empty() ? 0 : busy_sum / worker_busy_ns.size();
  auto hist = [&m](const char* stem, const Histogram& h) {
    const std::string base = std::string("host.window.") + stem;
    m[base + ".count"] = static_cast<double>(h.count());
    m[base + ".sum"] = static_cast<double>(h.sum());
    m[base + ".min"] = static_cast<double>(h.min());
    m[base + ".max"] = static_cast<double>(h.max());
  };
  hist("span_ns", window_span_hist);
  hist("busy_ns", window_busy_hist);
  return m;
}

void HostProfile::write_chrome_json(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  CR_CHECK_MSG(f != nullptr, "cannot open host trace file");
  std::fprintf(f, "[\n");
  std::fprintf(f,
               "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\","
               "\"args\":{\"name\":\"host backend (%u workers)\"}},\n",
               workers);
  std::fputs(
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"serial phase\"}}",
      f);
  for (uint32_t w = 0; w < workers; ++w) {
    std::fprintf(f,
                 ",\n{\"ph\":\"M\",\"pid\":0,\"tid\":%u,"
                 "\"name\":\"thread_name\",\"args\":{\"name\":\"worker "
                 "%u\"}}",
                 w + 1, w);
  }
  for (uint32_t w = 0; w < spans.size(); ++w) {
    for (const HostSpan& s : spans[w]) {
      // Coordinator plan/serial segments go to the dedicated serial
      // track; everything else to the worker's own track.
      const bool serial_track =
          w == 0 && (s.phase == HostPhase::kPlan ||
                     s.phase == HostPhase::kSerialDrain);
      std::fprintf(f,
                   ",\n{\"ph\":\"X\",\"pid\":0,\"tid\":%u,\"ts\":%.3f,"
                   "\"dur\":%.3f,\"name\":\"%s\",\"args\":{\"window\":%llu}}",
                   serial_track ? 0 : w + 1, s.t0 / 1000.0,
                   (s.t1 - s.t0) / 1000.0, host_phase_name(s.phase),
                   static_cast<unsigned long long>(s.window));
    }
  }
  std::fprintf(f, "\n]\n");
  std::fclose(f);
}

void HostProfile::write_json(const std::string& path,
                             const std::string& app) const {
  FILE* f = std::fopen(path.c_str(), "w");
  CR_CHECK_MSG(f != nullptr, "cannot open host phases file");
  std::fprintf(f, "{\n  \"kind\": \"host_phases\",\n");
  std::fprintf(f, "  \"app\": \"%s\",\n", app.c_str());
  std::fprintf(f, "  \"workers\": %u,\n", workers);
  std::fprintf(f, "  \"windows\": %llu,\n",
               static_cast<unsigned long long>(windows));
  std::fprintf(f, "  \"wall_ns\": %llu,\n",
               static_cast<unsigned long long>(wall_ns));
  std::fprintf(f, "  \"serial_ns\": %llu,\n",
               static_cast<unsigned long long>(serial_ns));
  std::fprintf(f, "  \"serial_fraction\": %.6f,\n", serial_fraction);
  std::fprintf(f, "  \"coordinator_recorded_ns\": %llu,\n",
               static_cast<unsigned long long>(coordinator_recorded_ns));
  std::fprintf(f, "  \"phase_ns\": {");
  for (size_t p = 0; p < kNumHostPhases; ++p) {
    std::fprintf(f, "%s\"%s\": %.0f", p == 0 ? "" : ", ",
                 host_phase_name(static_cast<HostPhase>(p)), phase_ns[p]);
  }
  std::fprintf(f, "},\n  \"workers_detail\": [\n");
  for (uint32_t w = 0; w < workers; ++w) {
    std::fprintf(f,
                 "    {\"worker\": %u, \"busy_ns\": %llu, "
                 "\"recorded_ns\": %llu, \"spans\": %llu}%s\n",
                 w, static_cast<unsigned long long>(worker_busy_ns[w]),
                 static_cast<unsigned long long>(worker_recorded_ns[w]),
                 static_cast<unsigned long long>(spans[w].size()),
                 w + 1 < workers ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"windows_detail\": [\n");
  for (size_t i = 0; i < window_rows.size(); ++i) {
    const HostWindowRow& r = window_rows[i];
    std::fprintf(f,
                 "    {\"window\": %llu, \"start_ns\": %llu, \"end_ns\": "
                 "%llu, \"serial_ns\": %llu, \"parallel_span_ns\": %llu, "
                 "\"busy_ns\": %llu}%s\n",
                 static_cast<unsigned long long>(r.window),
                 static_cast<unsigned long long>(r.start_ns),
                 static_cast<unsigned long long>(r.end_ns),
                 static_cast<unsigned long long>(r.serial_ns),
                 static_cast<unsigned long long>(r.parallel_span_ns),
                 static_cast<unsigned long long>(r.busy_ns),
                 i + 1 < window_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace cr::support
