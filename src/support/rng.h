// Deterministic, splittable pseudo-random number generator
// (xoshiro256** with splitmix64 seeding). Every randomized component of
// the library (mesh/graph generators, fuzz tests) takes an explicit Rng
// so whole experiments replay bit-identically from a single seed.
#pragma once

#include <cstdint>

namespace cr::support {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform in [0, 2^64).
  uint64_t next_u64();
  // Uniform in [0, bound); bound must be nonzero. Uses rejection sampling
  // so results are exactly uniform.
  uint64_t next_below(uint64_t bound);
  // Uniform in [lo, hi] inclusive.
  int64_t next_in(int64_t lo, int64_t hi);
  // Uniform double in [0, 1).
  double next_double();
  // Bernoulli trial.
  bool next_bool(double p_true = 0.5);
  // Derive an independent stream; deterministic function of the current
  // state and `stream`, does not advance this generator.
  Rng split(uint64_t stream) const;

 private:
  uint64_t s_[4];
};

}  // namespace cr::support
