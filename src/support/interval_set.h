// Sorted, coalesced set of half-open intervals over uint64 element ids.
//
// Every index space in the runtime — structured grids (linearized row
// segments) and unstructured node/cell sets alike — is represented as an
// IntervalSet. All the set algebra the paper's analyses need (region
// intersection for copies, disjointness for the region tree, image
// computation for dependent partitioning) reduces to linear-time merges
// over this representation.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

namespace cr::support {

struct Interval {
  uint64_t lo = 0;  // inclusive
  uint64_t hi = 0;  // exclusive
  uint64_t size() const { return hi - lo; }
  bool empty() const { return lo >= hi; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

class IntervalSet {
 public:
  IntervalSet() = default;
  IntervalSet(std::initializer_list<Interval> ivs);

  // [lo, hi) as a single interval (empty if lo >= hi).
  static IntervalSet range(uint64_t lo, uint64_t hi);
  // From arbitrary (possibly unsorted, duplicated) points.
  static IntervalSet from_points(std::vector<uint64_t> points);

  // Set algebra; all O(|a| + |b|) in interval counts.
  IntervalSet set_union(const IntervalSet& other) const;
  IntervalSet set_intersect(const IntervalSet& other) const;
  IntervalSet set_subtract(const IntervalSet& other) const;

  // Predicates.
  bool contains(uint64_t point) const;          // O(log n)
  bool contains_all(const IntervalSet& other) const;
  bool overlaps(const IntervalSet& other) const;
  bool disjoint(const IntervalSet& other) const { return !overlaps(other); }
  bool empty() const { return ivs_.empty(); }

  // Total number of elements.
  uint64_t size() const;
  // Number of maximal intervals (the "fragmentation" of the set).
  size_t interval_count() const { return ivs_.size(); }
  // Smallest interval covering the whole set; undefined when empty.
  Interval bounds() const;

  // Incremental construction. add() accepts intervals in any order;
  // append() requires lo >= the current maximum and is O(1) amortized.
  // Point insertion rejects UINT64_MAX loudly: `p + 1` wraps to 0, so a
  // half-open uint64 interval cannot represent it, and silently dropping
  // the point would corrupt set algebra downstream.
  void add(uint64_t lo, uint64_t hi);
  void append(uint64_t lo, uint64_t hi);
  void add_point(uint64_t p) { check_representable(p); add(p, p + 1); }
  void append_point(uint64_t p) { check_representable(p); append(p, p + 1); }
  void clear() { ivs_.clear(); }

  // Iteration.
  const std::vector<Interval>& intervals() const { return ivs_; }
  void for_each_point(const std::function<void(uint64_t)>& fn) const;

  // The id of the k-th smallest element (k < size()); O(log n).
  uint64_t nth_point(uint64_t k) const;

  std::string to_string() const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  static void check_representable(uint64_t p);
  void normalize();  // sort + coalesce after arbitrary adds
  std::vector<Interval> ivs_;
};

}  // namespace cr::support
