#pragma once

// Minimal recursive-descent JSON reader for the bench_diff comparator
// and tests. Handles objects, arrays, strings (all escapes including
// \uXXXX with surrogate pairs, decoded to UTF-8), numbers, booleans and
// null. Numbers parse as double; integral tokens that fit in 64 bits
// additionally keep an exact integer payload (see JsonValue).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cr::support {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  // Exact integer payloads. A double cannot represent every uint64_t
  // (2^53 and up lose low bits), so integral tokens that fit are also
  // kept exactly: `has_u64`/`u64` for 0..UINT64_MAX, `has_i64`/`i64`
  // for INT64_MIN..INT64_MAX. `num` always holds the (possibly rounded)
  // double view.
  bool has_u64 = false;
  bool has_i64 = false;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  std::string str;
  std::vector<JsonValue> arr;
  // Insertion-ordered so diffs report keys in file order.
  std::vector<std::pair<std::string, JsonValue>> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; null when absent or not an object.
  const JsonValue* get(const std::string& key) const;
};

// Parse `text` into `out`. On failure returns false and describes the
// problem (with byte offset) in `error`.
bool json_parse(const std::string& text, JsonValue& out, std::string& error);

}  // namespace cr::support
