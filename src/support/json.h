#pragma once

// Minimal recursive-descent JSON reader for the bench_diff comparator
// and tests. Handles the subset our own writers emit (objects, arrays,
// strings with backslash escapes, numbers, booleans, null); numbers all
// parse as double, matching the MetricsRegistry snapshot domain.

#include <map>
#include <string>
#include <vector>

namespace cr::support {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  // Insertion-ordered so diffs report keys in file order.
  std::vector<std::pair<std::string, JsonValue>> obj;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; null when absent or not an object.
  const JsonValue* get(const std::string& key) const;
};

// Parse `text` into `out`. On failure returns false and describes the
// problem (with byte offset) in `error`.
bool json_parse(const std::string& text, JsonValue& out, std::string& error);

}  // namespace cr::support
