#include "support/topology.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <string>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace cr::support {

namespace {

#if defined(__linux__)
// Read a small integer from a /sys topology file; `fallback` when the
// file is missing or malformed (containers often hide /sys).
int read_sys_int(const std::string& path, int fallback) {
  std::ifstream in(path);
  if (!in.good()) return fallback;
  int v = fallback;
  in >> v;
  if (in.fail()) return fallback;
  return v;
}
#endif

// Grouping key for "which physical core is this logical CPU on".
// A CPU whose core id could not be read (containers often hide /sys)
// must count as its own core — never merged with its neighbors, and
// never merged with a *known* core id either. Mapping unknowns onto the
// cpu index (the old scheme) collides when sysfs is partially readable:
// cpu 1 with an unreadable core file would share a key with whichever
// cpu really has core_id 1, silently halving the core count and
// double-pinning workers. Unknowns therefore key into a disjoint
// negative namespace, one value per cpu.
int core_key(const LogicalCpu& lc) {
  return lc.core >= 0 ? lc.core : -1 - lc.cpu;
}

}  // namespace

CpuTopology CpuTopology::probe() {
  CpuTopology topo;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return topo;
  const std::string base = "/sys/devices/system/cpu/cpu";
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (!CPU_ISSET(c, &set)) continue;
    LogicalCpu lc;
    lc.cpu = c;
    const std::string dir = base + std::to_string(c) + "/topology/";
    lc.core = read_sys_int(dir + "core_id", -1);
    lc.package = read_sys_int(dir + "physical_package_id", -1);
    topo.cpus.push_back(lc);
  }
#endif
  return topo;
}

uint32_t CpuTopology::physical_cores() const {
  std::map<std::pair<int, int>, bool> seen;
  for (const LogicalCpu& lc : cpus) {
    seen[{lc.package, core_key(lc)}] = true;
  }
  return static_cast<uint32_t>(seen.size());
}

std::vector<int> CpuTopology::plan(uint32_t n) const {
  std::vector<int> order;
  if (cpus.empty() || n == 0) return order;
  // Sort by (package, core, cpu) so packing is cache-hierarchy friendly,
  // then take one CPU per distinct physical core before any sibling.
  std::vector<LogicalCpu> sorted = cpus;
  std::sort(sorted.begin(), sorted.end(),
            [](const LogicalCpu& a, const LogicalCpu& b) {
              if (a.package != b.package) return a.package < b.package;
              if (a.core != b.core) return a.core < b.core;
              return a.cpu < b.cpu;
            });
  std::map<std::pair<int, int>, bool> used_core;
  std::vector<int> siblings;
  for (const LogicalCpu& lc : sorted) {
    auto key = std::make_pair(lc.package, core_key(lc));
    if (!used_core[key]) {
      used_core[key] = true;
      order.push_back(lc.cpu);
    } else {
      siblings.push_back(lc.cpu);
    }
  }
  order.insert(order.end(), siblings.begin(), siblings.end());
  // Cycle when oversubscribed: pinning still beats free migration.
  std::vector<int> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.push_back(order[i % order.size()]);
  return out;
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

std::vector<int> current_thread_affinity() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) != 0) {
    return cpus;
  }
  for (int c = 0; c < CPU_SETSIZE; ++c) {
    if (CPU_ISSET(c, &set)) cpus.push_back(c);
  }
#endif
  return cpus;
}

bool set_current_thread_affinity(const std::vector<int>& cpus) {
#if defined(__linux__)
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

}  // namespace cr::support
