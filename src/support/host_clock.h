// Host-phase profiling for the windowed multi-worker DES backend.
//
// The virtual-time tracer (support/trace.h) and the MetricsRegistry
// observe the *simulated* machine; this file observes the *host*: where
// the backend's wall-clock cycles go inside each conservative window.
// The simulator (sim/simulator.cc) timestamps the boundaries between
// its phases with a monotonic clock and records one HostSpan per phase
// per worker per window into a HostProfiler; the aggregated HostProfile
// is the input to tools/window_report, the bench --host-trace Chrome
// export, and the serial-fraction gate the backend-v3 work is measured
// against.
//
// Phase taxonomy (one timeline segment per worker per window; spans on
// a worker's timeline are contiguous by construction — each phase ends
// where the next begins, so per-worker recorded time reconciles with
// the run's wall clock up to the pre-loop setup and post-loop teardown
// slivers):
//
//   plan          coordinator only: mailbox drain, lane-front heap
//                 maintenance, window-horizon solve, boundary gauges
//   serial_drain  coordinator only: the global-lane serial phase
//                 (barrier fan-ins, merge completions)
//   lane_drain    a worker executing its node-lane block
//   outbox_flush  a worker publishing staged cross-lane pushes
//   barrier_wait  blocked: a worker in await_release, or the
//                 coordinator in wait_arrivals
//   barrier_wake  signaling: the coordinator's release, a worker's
//                 arrival propagation
//   elided        an elided window boundary: the symmetric rendezvous
//                 between fused sub-windows (wait + horizon handoff +
//                 the worker's own-block mailbox drain) that replaces
//                 a full park/serial-drain/release cycle
//
// Everything here is host-side observation only: recording reads the
// host clock but never virtual time, and nothing in the simulator's
// virtual-time ordering ever reads the host clock, so a profiled run's
// virtual results are bit-identical to an unprofiled one (enforced by
// the parallel-equivalence tests). The disabled path is a null-pointer
// check at every hook site.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/metrics.h"

namespace cr::support {

// Monotonic host clock in nanoseconds (std::chrono::steady_clock).
// Never feed this into anything that decides virtual-time ordering.
uint64_t host_now_ns();

enum class HostPhase : uint8_t {
  kPlan = 0,
  kSerialDrain = 1,
  kLaneDrain = 2,
  kOutboxFlush = 3,
  kBarrierWait = 4,
  kBarrierWake = 5,
  kElided = 6,
};
inline constexpr size_t kNumHostPhases = 7;
const char* host_phase_name(HostPhase p);

struct HostSpan {
  uint64_t window = 0;  // conservative-window index the phase served
  HostPhase phase = HostPhase::kPlan;
  uint64_t t0 = 0;  // ns since profile begin
  uint64_t t1 = 0;
  uint64_t duration() const { return t1 - t0; }
};

// Per-window rollup derived from the coordinator's (worker 0) spans.
struct HostWindowRow {
  uint64_t window = 0;
  uint64_t start_ns = 0;  // coordinator timeline, relative to begin
  uint64_t end_ns = 0;
  // Serial segment: plan + serial drain + release signaling — the part
  // of the window during which every other worker is necessarily idle.
  uint64_t serial_ns = 0;
  // Parallel segment: release complete -> all arrivals observed (with
  // one worker: the coordinator's own lane drain + outbox flush).
  uint64_t parallel_span_ns = 0;
  // Sum over workers of lane_drain + outbox_flush inside this window.
  uint64_t busy_ns = 0;
};

// The aggregated result of one profiled run_windowed().
struct HostProfile {
  uint32_t workers = 0;
  uint64_t windows = 0;
  uint64_t wall_ns = 0;  // begin() .. end() on the coordinator

  // Raw spans, one vector per worker (index 0 = coordinator), each in
  // recording (= time) order.
  std::vector<std::vector<HostSpan>> spans;

  // --- derived aggregates (filled by HostProfiler::profile()) ---------
  double phase_ns[kNumHostPhases] = {};     // totals over all workers
  std::vector<uint64_t> worker_busy_ns;     // lane_drain + outbox_flush
  std::vector<uint64_t> worker_recorded_ns; // all spans (busy + waits)
  uint64_t coordinator_recorded_ns = 0;     // = worker_recorded_ns[0]
  uint64_t serial_ns = 0;                   // wall - sum(parallel spans)
  double serial_fraction = 0;               // serial_ns / wall_ns
  std::vector<HostWindowRow> window_rows;
  // Log2 histograms over the per-window rows (for the host.* rollup).
  Histogram window_span_hist;  // parallel_span_ns per window
  Histogram window_busy_hist;  // busy_ns per window

  // Flat "host."-prefixed key/value view (per-phase totals, per-worker
  // busy/idle fractions, per-window histogram stats, serial fraction).
  // Deliberately NOT merged into the runtime's MetricsRegistry: that
  // registry's snapshot is the bit-stable cross-machine diff surface
  // (ExecutionResult::metrics), and these are wall-clock quantities.
  // Artifact writers (parallel_speedup --json, write_json) consume this.
  std::map<std::string, double> host_metrics() const;

  // Chrome trace_event JSON of the host timeline: one track per worker
  // plus a separate serial-phase track carrying the coordinator's plan
  // and serial-drain segments. Complements the virtual-time trace.
  void write_chrome_json(const std::string& path) const;

  // The tools/window_report input: aggregates plus one row per window.
  // `app` tags the artifact; pass "" when unknown.
  void write_json(const std::string& path, const std::string& app) const;
};

// Accumulates spans during a windowed run. One writer per worker lane,
// no locks: begin() sizes the lanes before the worker threads start and
// profile() is called after they join, so the thread-create/join edges
// order everything. Recording cost is one vector push; the caller pays
// two host-clock reads per phase boundary.
class HostProfiler {
 public:
  void begin(uint32_t workers);
  void end();
  bool active() const { return active_; }
  uint64_t origin_ns() const { return origin_ns_; }

  void record(uint32_t worker, uint64_t window, HostPhase phase,
              uint64_t abs_t0, uint64_t abs_t1);

  // Aggregate everything recorded so far (call after end()).
  HostProfile profile() const;

 private:
  bool active_ = false;
  uint32_t workers_ = 0;
  uint64_t origin_ns_ = 0;
  uint64_t end_ns_ = 0;
  std::vector<std::vector<HostSpan>> lanes_;
};

}  // namespace cr::support
