// Hashing utilities shared by the runtime's memoization caches and the
// compiler's pair-keyed tables. std::hash of an integer is the identity
// on common standard libraries; the caches key on small sequential ids,
// so every hasher here finishes with a strong 64-bit mix to keep bucket
// distributions flat.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

namespace cr::support {

// splitmix64 finalizer: bijective, avalanches all bits.
inline uint64_t hash_mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Two 32-bit ids packed into one cache key (order-sensitive; callers
// normalize to (min, max) when the relation is symmetric).
inline constexpr uint64_t pack_pair32(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

// Hasher for unordered containers keyed on packed or raw u64 ids.
struct U64Hash {
  size_t operator()(uint64_t x) const { return static_cast<size_t>(hash_mix(x)); }
};

// Hasher for std::pair keys of integral ids.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B>& p) const {
    return static_cast<size_t>(
        hash_mix(pack_pair32(static_cast<uint32_t>(p.first),
                             static_cast<uint32_t>(p.second))));
  }
};

}  // namespace cr::support
