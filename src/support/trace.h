// Virtual-time structured tracing: the observability layer under every
// simulator/runtime/executor component.
//
// A Tracer records three kinds of facts about a run:
//
//  - spans: categorized busy intervals [start, end) on a *track* (a
//    simulated hardware resource: one core, one NIC, one memory port —
//    or the synthetic "runtime" track for barriers and collectives);
//  - instants: point markers (barrier arrivals, triggers);
//  - dependence edges: which span's completion gated which other span's
//    start, expressed through the simulator's event identities (uids).
//
// From these it derives the two profiling artifacts the paper's
// evaluation leans on (Figs. 6-9): a Chrome trace_event JSON file (one
// "process" per node, one "thread" per track; open in chrome://tracing
// or Perfetto) and an aggregated text report with a per-category
// machine-time breakdown (compute / copy / sync / idle, summing exactly
// to tracks x makespan) plus a longest-path (critical path) walk over
// the recorded dependence edges.
//
// Tracing is strictly passive: recording observes virtual time, never
// advances it, so an instrumented run's timeline is bit-identical to an
// uninstrumented one. The disabled path is a null-pointer check at every
// hook site; no strings are built and nothing is stored.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cr::support {

// Mirrors sim::Time (virtual nanoseconds) without depending on sim/.
using TraceTime = uint64_t;

using SpanId = uint32_t;
inline constexpr SpanId kNoSpan = UINT32_MAX;

// Track addressing: pid = node (kRuntimePid for the synthetic runtime
// track), tid = core index, or one of the reserved per-node resources.
inline constexpr uint32_t kRuntimePid = UINT32_MAX;
inline constexpr uint32_t kNicTid = 1000000;  // per-node NIC injection port
inline constexpr uint32_t kMemTid = 1000001;  // per-node intra-node copies

enum class TraceCategory : uint8_t { kCompute = 0, kCopy = 1, kSync = 2 };
const char* trace_category_name(TraceCategory c);

// Label attached by a caller to a busy interval it schedules (a task on
// a processor, a message on the NIC). An empty tag records a span with a
// generic name.
struct TraceTag {
  TraceCategory category = TraceCategory::kCompute;
  std::string name;
  bool empty() const { return name.empty(); }
};

struct TraceSpan {
  uint32_t pid = 0;
  uint32_t tid = 0;
  TraceCategory category = TraceCategory::kCompute;
  TraceTime start = 0;
  TraceTime end = 0;
  std::string name;
  TraceTime duration() const { return end - start; }
};

struct TraceInstant {
  uint32_t pid = 0;
  uint32_t tid = 0;
  TraceTime time = 0;
  std::string name;
};

// Per-category machine-time totals. Overlapping spans on one track are
// claimed once, in priority order compute > copy > sync, so the four
// buckets partition tracks x makespan exactly.
struct TraceBreakdown {
  double compute_ns = 0;
  double copy_ns = 0;
  double sync_ns = 0;
  double idle_ns = 0;
  double total_ns = 0;  // = makespan * tracks
  uint32_t tracks = 0;
  TraceTime makespan = 0;
  double compute_frac() const { return frac(compute_ns); }
  double copy_frac() const { return frac(copy_ns); }
  double sync_frac() const { return frac(sync_ns); }
  double idle_frac() const { return frac(idle_ns); }

 private:
  double frac(double v) const { return total_ns > 0 ? v / total_ns : 0; }
};

// Copy/sync virtual time attributed to one user source statement (see
// ir::Provenance; the executors attribute runtime spans through the
// event uids of the operations they issue).
struct TraceAttributionRow {
  uint32_t source = 0;  // source statement id
  std::string label;    // its label (loop var / task name)
  double copy_ns = 0;   // attributed copy span time
  double sync_ns = 0;   // attributed sync span time
  uint64_t spans = 0;   // attributed span count
  double total_ns() const { return copy_ns + sync_ns; }
};

struct TraceSummary {
  TraceBreakdown breakdown;

  // Critical path: the longest dependence chain ending at the span that
  // finishes last. Wait is time on the path not covered by any span
  // (network latency, barrier gaps, queueing).
  double cp_compute_ns = 0;
  double cp_copy_ns = 0;
  double cp_sync_ns = 0;
  double cp_wait_ns = 0;
  size_t cp_spans = 0;
  // Top contributors on the path, aggregated by name stem (the part
  // before any "[color]" suffix), sorted by time descending.
  std::vector<std::pair<std::string, double>> cp_top;

  // Copy/sync time per attributed source statement, sorted by total
  // time descending (empty when nothing was attributed).
  std::vector<TraceAttributionRow> attribution;

  std::string to_text() const;
};

class Tracer {
 public:
  // --- recording (called from instrumentation hooks) -------------------

  SpanId add_span(uint32_t pid, uint32_t tid, TraceCategory category,
                  std::string name, TraceTime start, TraceTime end);
  void add_instant(uint32_t pid, uint32_t tid, std::string name,
                   TraceTime time);

  // Names a track (and whether it is hardware, i.e. counted in the idle
  // accounting); tracks also spring into existence when a span lands on
  // them, defaulting to hardware unless pid == kRuntimePid.
  void declare_track(uint32_t pid, uint32_t tid, std::string name,
                     bool hardware = true);
  void set_process_name(uint32_t pid, std::string name);

  // --- sharded recording (multi-worker simulator backend) --------------
  // Between begin_sharded(lanes) and end_sharded(), a thread that has
  // declared a lane (set_thread_lane) buffers its recording calls into
  // that lane; end_sharded() merges the lanes in index order. The merged
  // record is a pure function of per-lane contents, so it is identical
  // no matter how host threads interleaved. SpanIds handed out while
  // sharded are lane-local and remapped during the merge — callers only
  // ever use them immediately, on the same lane, for bind()/edge().

  void begin_sharded(uint32_t lanes);
  void end_sharded();
  // Routes this thread's recording to `lane`; -1 restores direct
  // recording. A process-wide thread attribute (one active Tracer).
  static void set_thread_lane(int32_t lane);

  // --- dependence bookkeeping ------------------------------------------
  // Keys are simulator event uids (sim::Event::uid). uid 0 (the
  // no-event) is ignored everywhere.

  // `span`'s completion triggers the event `uid`.
  void bind(uint64_t uid, SpanId span);
  // `derived` triggers because `original` did (merge resolution, user
  // events chained off internal completions).
  void alias(uint64_t derived, uint64_t original);
  // The producer of event `uid` (resolved through aliases at summary
  // time) gated the start of `to`.
  void edge(uint64_t uid, SpanId to);

  // Attribute the span producing (or aliased to) event `uid` to user
  // source statement `source` (labelled `label`). Resolution to spans
  // happens at summary time; first attribution of a uid wins.
  void attribute(uint64_t uid, uint32_t source, const std::string& label);

  // --- inspection / artifacts ------------------------------------------

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceInstant>& instants() const { return instants_; }

  // Chrome trace_event JSON ("X" spans, "i" instants, "M" metadata).
  // Timestamps are microseconds as trace viewers expect.
  void write_chrome_json(const std::string& path) const;

  // Aggregate breakdown + critical path for a run that ended at
  // `makespan` virtual ns.
  TraceSummary summarize(TraceTime makespan) const;

  // Just the per-source copy/sync rollup (also included in summarize()).
  std::vector<TraceAttributionRow> attribution() const;

 private:
  struct TrackKey {
    uint32_t pid = 0;
    uint32_t tid = 0;
    friend bool operator==(const TrackKey&, const TrackKey&) = default;
  };
  struct TrackKeyHash {
    size_t operator()(const TrackKey& k) const {
      return (static_cast<size_t>(k.pid) << 32) ^ k.tid;
    }
  };
  struct TrackInfo {
    std::string name;
    bool hardware = true;
  };
  struct LaneDecl {
    uint32_t pid = 0;
    uint32_t tid = 0;
    std::string name;
    bool hardware = true;
  };
  // One worker lane's buffered recording; bind/edge span ids are local
  // indices into `spans` until the end_sharded() merge.
  struct LaneBuffer {
    std::vector<TraceSpan> spans;
    std::vector<TraceInstant> instants;
    std::vector<LaneDecl> tracks;
    std::vector<std::pair<uint32_t, std::string>> process_names;
    std::vector<std::pair<uint64_t, SpanId>> binds;
    std::vector<std::pair<uint64_t, uint64_t>> aliases;
    std::vector<std::pair<uint64_t, SpanId>> edges;
    std::vector<std::pair<uint64_t, std::pair<uint32_t, std::string>>> attrs;
  };
  LaneBuffer* lane();  // nullptr when recording directly

  uint64_t resolve_alias(uint64_t uid) const;
  SpanId producer_of(uint64_t uid) const;
  // Deterministic span -> source-statement resolution of attr_uids_
  // (uids visited in sorted order, first claim of a span wins).
  std::unordered_map<SpanId, uint32_t> span_sources() const;

  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
  std::unordered_map<TrackKey, TrackInfo, TrackKeyHash> tracks_;
  std::unordered_map<uint32_t, std::string> process_names_;
  std::unordered_map<uint64_t, SpanId> producer_;   // event uid -> span
  std::unordered_map<uint64_t, uint64_t> aliases_;  // derived -> original
  std::vector<std::pair<uint64_t, SpanId>> edges_;  // pre uid -> consumer
  std::unordered_map<uint64_t, uint32_t> attr_uids_;  // event uid -> source
  std::unordered_map<uint32_t, std::string> attr_labels_;  // source -> label
  std::vector<LaneBuffer> lanes_;
  bool sharded_ = false;
};

}  // namespace cr::support
