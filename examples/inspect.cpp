// cr-inspect: build any of the four evaluation applications at a chosen
// scale and look inside the system — the region forest (compare the
// paper's Figures 3 and 5), the program before and after control
// replication (Figures 2 and 4), the pipeline report, and optionally a
// Chrome-trace timeline of the simulated execution.
//
//   $ ./examples/inspect circuit 4 trace.json
//   $ ./examples/inspect stencil 2
//   usage: inspect {stencil|circuit|pennant|miniaero} [nodes] [trace.json]
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/circuit/circuit.h"
#include "apps/miniaero/miniaero.h"
#include "apps/pennant/pennant.h"
#include "apps/stencil/stencil.h"
#include "exec/spmd_exec.h"
#include "ir/printer.h"

using namespace cr;

namespace {

void inspect(rt::Runtime& rt, ir::Program program, const char* trace_path) {
  exec::CostModel cost = exec::CostModel::piz_daint();
  std::printf("==== region forest ====\n%s\n",
              rt.forest().to_string().c_str());
  std::printf("==== implicitly parallel program ====\n%s\n",
              ir::to_string(program).c_str());

  exec::PreparedRun run = exec::prepare_spmd(rt, std::move(program), cost, {});
  std::printf("==== after control replication ====\n%s\n",
              ir::to_string(*run.program).c_str());
  const passes::PipelineReport& r = run.report;
  std::printf(
      "==== pipeline report ====\n"
      "fragment statements     %zu\n"
      "projections normalized  %zu\n"
      "init / inner / final    %zu / %zu / %zu copies\n"
      "reductions rewritten    %zu\n"
      "copies removed/hoisted  %zu / %zu\n"
      "intersection tables     %zu\n"
      "collectives             %zu\n"
      "p2p copies / barriers   %zu / %zu\n\n",
      r.fragment_statements, r.projections_normalized, r.init_copies,
      r.inner_copies, r.finalize_copies, r.reductions_rewritten,
      r.copies_removed, r.copies_hoisted, r.intersection_tables,
      r.collectives, r.p2p_copies, r.barriers);

  if (trace_path != nullptr) run.engine->enable_trace();
  exec::ExecutionResult res = run.run();
  std::printf(
      "==== execution ====\n"
      "virtual makespan  %.3f ms\n"
      "point tasks       %llu\n"
      "copies            %llu (+%llu empty pairs skipped)\n"
      "bytes moved       %llu\n"
      "messages          %llu\n"
      "intersections     %llu nonempty pairs\n",
      static_cast<double>(res.makespan_ns) * 1e-6,
      (unsigned long long)res.point_tasks,
      (unsigned long long)res.copies_issued,
      (unsigned long long)res.copies_skipped,
      (unsigned long long)res.bytes_moved,
      (unsigned long long)res.messages,
      (unsigned long long)res.intersection_pairs);
  if (trace_path != nullptr) {
    run.engine->write_trace(trace_path);
    std::printf("timeline written to %s (open in chrome://tracing)\n",
                trace_path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "circuit";
  const uint32_t nodes =
      argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 4;
  const char* trace = argc > 3 ? argv[3] : nullptr;

  exec::CostModel cost = exec::CostModel::piz_daint();
  rt::Runtime rt(exec::runtime_config(nodes, 12, cost, /*real_data=*/true));

  if (app == "stencil") {
    apps::stencil::Config cfg;
    cfg.nodes = nodes;
    cfg.tasks_per_node = 2;
    cfg.tile_x = cfg.tile_y = 12;
    cfg.steps = 3;
    inspect(rt, apps::stencil::build(rt, cfg).program, trace);
  } else if (app == "circuit") {
    apps::circuit::Config cfg;
    cfg.nodes = nodes;
    cfg.pieces_per_node = 2;
    cfg.nodes_per_piece = 24;
    cfg.wires_per_piece = 64;
    cfg.steps = 3;
    inspect(rt, apps::circuit::build(rt, cfg).program, trace);
  } else if (app == "pennant") {
    apps::pennant::Config cfg;
    cfg.nodes = nodes;
    cfg.pieces_per_node = 2;
    cfg.zones_x_per_piece = 6;
    cfg.zones_y = 6;
    cfg.steps = 3;
    inspect(rt, apps::pennant::build(rt, cfg).program, trace);
  } else if (app == "miniaero") {
    apps::miniaero::Config cfg;
    cfg.nodes = nodes;
    cfg.pieces_per_node = 2;
    cfg.cells_x_per_piece = 4;
    cfg.cells_y = cfg.cells_z = 4;
    cfg.steps = 2;
    inspect(rt, apps::miniaero::build(rt, cfg).program, trace);
  } else {
    std::fprintf(stderr,
                 "usage: %s {stencil|circuit|pennant|miniaero} [nodes] "
                 "[trace.json]\n",
                 argv[0]);
    return 2;
  }
  return 0;
}
