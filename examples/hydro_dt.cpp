// Example: PENNANT-style Lagrangian hydrodynamics with a dynamic
// timestep (paper §4.4 / §5.3).
//
// The per-cycle stable-dt candidate is MIN-reduced across all pieces by
// a dynamic collective and broadcast back into every shard's replicated
// scalar environment; the example prints the dt trajectory and verifies
// the collective produced exactly the sequential semantics' values.
//
//   $ ./examples/hydro_dt
#include <cstdio>

#include "apps/pennant/pennant.h"
#include "exec/sequential_exec.h"
#include "exec/spmd_exec.h"

using namespace cr;

int main() {
  apps::pennant::Config cfg;
  cfg.nodes = 4;
  cfg.pieces_per_node = 2;
  cfg.zones_x_per_piece = 10;
  cfg.zones_y = 12;
  cfg.dt_init = 2e-4;

  exec::CostModel cost = exec::CostModel::piz_daint();
  std::printf("PENNANT proxy, %u nodes, %llu zones; dt trajectory:\n",
              cfg.nodes,
              (unsigned long long)(cfg.nodes * cfg.pieces_per_node *
                                   cfg.zones_x_per_piece * cfg.zones_y));
  std::printf("%-8s %-14s %-14s %-10s\n", "cycles", "dt (spmd)",
              "dt (oracle)", "match");
  bool all_ok = true;
  for (uint64_t steps : {1u, 2u, 4u, 8u}) {
    cfg.steps = steps;
    rt::Runtime rt(exec::runtime_config(cfg.nodes, 12, cost, true));
    apps::pennant::App app = apps::pennant::build(rt, cfg);
    exec::SequentialResult oracle = exec::run_sequential(app.program);
    exec::PreparedRun run = exec::prepare_spmd(rt, app.program, cost, {});
    run.run();
    const double dt_spmd = run.engine->scalar(app.s_dt);
    const double dt_seq = oracle.scalar(app.s_dt);
    const bool ok = std::abs(dt_spmd - dt_seq) < 1e-15;
    all_ok = all_ok && ok;
    std::printf("%-8llu %-14.6e %-14.6e %-10s\n",
                (unsigned long long)steps, dt_spmd, dt_seq,
                ok ? "yes" : "NO");
  }
  std::printf(
      "\nthe dynamic collective reproduces the sequential dt chain: %s\n",
      all_ok ? "YES" : "NO");
  return all_ok ? 0 : 1;
}
