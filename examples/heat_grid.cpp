// Example: the PRK stencil application end to end with real data.
//
// Builds the paper-§5.1 stencil on a simulated 8-node machine, runs it
// with and without control replication, validates the result against the
// PRK closed form, and compares the two executions' control-plane
// behavior — the 10x difference in control-thread busy time is the
// paper's whole point, visible on 8 nodes.
//
//   $ ./examples/heat_grid
#include <cstdio>

#include "apps/stencil/stencil.h"
#include "exec/spmd_exec.h"

using namespace cr;

int main() {
  apps::stencil::Config cfg;
  cfg.nodes = 8;
  cfg.tasks_per_node = 4;
  cfg.tile_x = 24;
  cfg.tile_y = 24;
  cfg.steps = 6;
  cfg.ns_per_point = 20000;  // ~12 ms tasks

  auto run = [&](bool with_cr) {
    exec::CostModel cost = exec::CostModel::piz_daint();
    rt::Runtime rt(exec::runtime_config(cfg.nodes, 12, cost, true));
    apps::stencil::App app = apps::stencil::build(rt, cfg);
    exec::PreparedRun prepared =
        with_cr ? exec::prepare_spmd(rt, app.program, cost, {})
                : exec::prepare_implicit(rt, app.program, cost, {});
    exec::ExecutionResult res = prepared.run();

    // Validate against the PRK closed form at a few interior points.
    const auto& e = rt.forest().region(app.r_out).ispace.extents();
    bool ok = true;
    for (int64_t x = 4; x < static_cast<int64_t>(e.n[0]) - 4; x += 17) {
      for (int64_t y = 4; y < static_cast<int64_t>(e.n[1]) - 4; y += 13) {
        const double got =
            prepared.engine->read_root_f64(app.r_out, app.f_out,
                                           e.linearize(x, y));
        const double want =
            apps::stencil::expected_interior(cfg, cfg.steps, x, y);
        if (std::abs(got - want) > 1e-9) ok = false;
      }
    }
    std::printf(
        "%-12s makespan %8.3f ms   control-core busy %8.3f ms   "
        "%6llu tasks  %5llu copies  result %s\n",
        with_cr ? "with CR" : "without CR",
        static_cast<double>(res.makespan_ns) * 1e-6,
        static_cast<double>(res.control_busy_ns) * 1e-6,
        (unsigned long long)res.point_tasks,
        (unsigned long long)res.copies_issued, ok ? "OK" : "WRONG");
    return res;
  };

  std::printf("PRK stencil, 8 simulated nodes, %llu tiles:\n",
              (unsigned long long)(cfg.nodes * cfg.tasks_per_node));
  exec::ExecutionResult with_cr = run(true);
  exec::ExecutionResult without = run(false);
  std::printf(
      "\ncontrol replication shrinks the node-0 control core's work "
      "%.1fx\n",
      static_cast<double>(without.control_busy_ns) /
          static_cast<double>(with_cr.control_busy_ns));
  return 0;
}
