// Quickstart: write an implicitly parallel program against the public
// API, control-replicate it, and run it three ways.
//
// The program is the paper's Figure 2: two forall launches per timestep
// over a block partition and an aliased image partition ("halo"). We
// print the IR before and after control replication — compare the output
// to the paper's Figure 4 — and check that the distributed SPMD execution
// produces exactly the data the sequential semantics promise.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "exec/sequential_exec.h"
#include "exec/spmd_exec.h"
#include "ir/builder.h"
#include "ir/printer.h"
#include "rt/partition.h"

using namespace cr;

int main() {
  constexpr uint64_t kElements = 64;
  constexpr uint64_t kBlocks = 8;
  constexpr uint64_t kSteps = 4;
  constexpr uint32_t kNodes = 4;

  // --- a simulated 4-node machine --------------------------------------
  exec::CostModel cost;  // defaults; see exec/cost_model.h
  rt::Runtime runtime(exec::runtime_config(kNodes, /*cores_per_node=*/4,
                                           cost, /*real_data=*/true));
  rt::RegionForest& forest = runtime.forest();

  // --- regions and partitions (paper Figure 2, lines 16-22) ------------
  auto fields_a = std::make_shared<rt::FieldSpace>();
  const rt::FieldId va = fields_a->add_field("va");
  auto fields_b = std::make_shared<rt::FieldSpace>();
  const rt::FieldId vb = fields_b->add_field("vb");
  const rt::RegionId A =
      forest.create_region(rt::IndexSpace::dense(kElements), fields_a, "A");
  const rt::RegionId B =
      forest.create_region(rt::IndexSpace::dense(kElements), fields_b, "B");
  const rt::PartitionId PA = rt::partition_equal(forest, A, kBlocks, "PA");
  const rt::PartitionId PB = rt::partition_equal(forest, B, kBlocks, "PB");
  // QB = image(B, PB, h) with h(x) = (x + 5) mod N: an aliased partition
  // naming exactly what each TG task will read.
  auto h = [](uint64_t x) { return (x + 5) % kElements; };
  const rt::PartitionId QB = rt::partition_image(
      forest, B, PB,
      [h](uint64_t x, std::vector<uint64_t>& out) { out.push_back(h(x)); },
      "QB");

  // --- tasks ------------------------------------------------------------
  ir::ProgramBuilder builder(forest, "quickstart");
  using P = rt::Privilege;
  using B_ = ir::ProgramBuilder;

  const ir::TaskId t_init = builder.task(
      "TInit", {{P::kWriteDiscard, rt::ReduceOp::kSum, {va}}}, 500, 2.0,
      [](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t i) {
          ctx.write_f64(0, 0, i, static_cast<double>(i));
        });
      });
  // TF: B[i] = 2 * A[i]
  const ir::TaskId t_f = builder.task(
      "TF",
      {{P::kReadWrite, rt::ReduceOp::kSum, {vb}},
       {P::kReadOnly, rt::ReduceOp::kSum, {va}}},
      500, 2.0, [](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t i) {
          ctx.write_f64(0, 0, i, 2.0 * ctx.read_f64(1, 0, i));
        });
      });
  // TG: A[j] = B[h(j)] + 1   (reads through the halo partition QB)
  const ir::TaskId t_g = builder.task(
      "TG",
      {{P::kReadWrite, rt::ReduceOp::kSum, {va}},
       {P::kReadOnly, rt::ReduceOp::kSum, {vb}}},
      500, 2.0, [h](ir::TaskContext& ctx) {
        ctx.domain().points().for_each_point([&](uint64_t j) {
          ctx.write_f64(0, 0, j, ctx.read_f64(1, 0, h(j)) + 1.0);
        });
      });

  // --- the implicitly parallel main loop (Figure 2, lines 23-30) -------
  builder.index_launch(t_init, kBlocks,
                       {B_::arg(PA, P::kWriteDiscard, {va})});
  builder.begin_for_time(kSteps);
  builder.index_launch(t_f, kBlocks,
                       {B_::arg(PB, P::kReadWrite, {vb}),
                        B_::arg(PA, P::kReadOnly, {va})});
  builder.index_launch(t_g, kBlocks,
                       {B_::arg(PA, P::kReadWrite, {va}),
                        B_::arg(QB, P::kReadOnly, {vb})});
  builder.end_for_time();
  ir::Program program = builder.finish();

  std::printf("==== source program (implicitly parallel) ====\n%s\n",
              ir::to_string(program).c_str());

  // --- 1. the sequential oracle -----------------------------------------
  exec::SequentialResult oracle = exec::run_sequential(program);

  // --- 2. control replication + SPMD execution --------------------------
  exec::PreparedRun spmd = exec::prepare_spmd(runtime, program, cost, {});
  std::printf("==== after control replication (compare Figure 4d) ====\n%s\n",
              ir::to_string(*spmd.program).c_str());
  exec::ExecutionResult spmd_res = spmd.run();

  // --- 3. the same program on a second machine, without CR --------------
  rt::Runtime runtime2(exec::runtime_config(kNodes, 4, cost, true));
  // Rebuild against the second runtime's forest (ids are per-forest).
  // For brevity this example just reports the SPMD run's statistics.

  bool ok = true;
  for (uint64_t i = 0; i < kElements; ++i) {
    if (spmd.engine->read_root_f64(A, va, i) != oracle.read_f64(A, va, i)) {
      ok = false;
    }
  }
  std::printf("SPMD result matches sequential semantics: %s\n",
              ok ? "YES" : "NO");
  std::printf(
      "virtual makespan %.3f ms, %llu point tasks, %llu copies, "
      "%llu bytes moved, %llu messages\n",
      static_cast<double>(spmd_res.makespan_ns) * 1e-6,
      (unsigned long long)spmd_res.point_tasks,
      (unsigned long long)spmd_res.copies_issued,
      (unsigned long long)spmd_res.bytes_moved,
      (unsigned long long)spmd_res.messages);
  std::printf("A[17] = %.1f (expected %.1f)\n",
              spmd.engine->read_root_f64(A, va, 17),
              oracle.read_f64(A, va, 17));
  return ok ? 0 : 1;
}
