// Example: the sparse circuit simulation (paper §5.4) with real data.
//
// Demonstrates the hierarchical private/shared region idiom and region
// reductions: wire currents deposit charge into nodes owned by other
// pieces through reduction copies. With zero leakage the total V*C over
// the circuit is an invariant the run checks every configuration against.
//
//   $ ./examples/circuit_sim
#include <cstdio>

#include "apps/circuit/circuit.h"
#include "exec/sequential_exec.h"
#include "exec/spmd_exec.h"

using namespace cr;

int main() {
  apps::circuit::Config cfg;
  cfg.nodes = 6;
  cfg.pieces_per_node = 2;
  cfg.nodes_per_piece = 48;
  cfg.wires_per_piece = 160;
  cfg.pct_cross = 0.12;
  cfg.steps = 8;
  cfg.leakage = 0.0;  // conservation check

  exec::CostModel cost = exec::CostModel::piz_daint();
  rt::Runtime rt(exec::runtime_config(cfg.nodes, 12, cost, true));
  apps::circuit::App app = apps::circuit::build(rt, cfg);

  uint64_t shared = 0;
  for (bool s : app.graph.shared) shared += s ? 1 : 0;
  std::printf(
      "circuit: %llu nodes (%llu shared), %llu wires, %llu pieces on %u "
      "machine nodes\n",
      (unsigned long long)app.graph.num_nodes(), (unsigned long long)shared,
      (unsigned long long)app.graph.num_wires(),
      (unsigned long long)app.pieces, cfg.nodes);

  exec::SequentialResult oracle = exec::run_sequential(app.program);
  exec::PreparedRun run = exec::prepare_spmd(rt, app.program, cost, {});
  exec::ExecutionResult res = run.run();

  double vc0 = 0, vc1 = 0;
  bool match = true;
  for (uint64_t n = 0; n < app.graph.num_nodes(); ++n) {
    const double v = run.engine->read_root_f64(app.rn, app.f_voltage, n);
    const double c = run.engine->read_root_f64(app.rn, app.f_cap, n);
    vc1 += v * c;
    vc0 += oracle.read_f64(app.rn, app.f_voltage, n) *
           oracle.read_f64(app.rn, app.f_cap, n);
    if (std::abs(v - oracle.read_f64(app.rn, app.f_voltage, n)) > 1e-11) {
      match = false;
    }
  }
  std::printf("SPMD matches sequential oracle: %s\n", match ? "YES" : "NO");
  std::printf("sum(V*C): spmd %.9f vs oracle %.9f (invariant)\n", vc1, vc0);
  std::printf(
      "virtual makespan %.3f ms; %llu tasks, %llu copies "
      "(%llu empty pairs skipped by the intersection optimization), "
      "%llu intersection pairs\n",
      static_cast<double>(res.makespan_ns) * 1e-6,
      (unsigned long long)res.point_tasks,
      (unsigned long long)res.copies_issued,
      (unsigned long long)res.copies_skipped,
      (unsigned long long)res.intersection_pairs);
  return match ? 0 : 1;
}
